(* The typed-AST analyzer (lib/analysis + sbgp-astlint).

   Three layers: the deliberately-bad fixture corpus must match its
   golden diagnostic list exactly (so a rule cannot silently widen or
   narrow); the per-rule false-negative guard must hold (every seeded
   defect caught, the clean control silent); and the production tree
   itself must be clean under the checked-in allowlist — the same gate
   `dune build @lint` enforces.  Plus unit tests for the symbol
   canonicalizer and the allowlist parser, which the rules lean on. *)

module A = Core.Analysis
module D = Core.Check.Diagnostic

let root =
  match A.Cmt_loader.locate_build_root () with
  | Some r -> r
  | None -> Alcotest.fail "no build root with .cmt artifacts found"

let fixture_outcome =
  lazy (A.analyze ~config:A.fixture_config ~root ~dirs:[ A.fixture_dir ] ())

(* ---- golden corpus ------------------------------------------------ *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (if String.trim l = "" then acc else l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_golden () =
  let outcome = Lazy.force fixture_outcome in
  let actual = List.map D.to_string outcome.A.report.D.diags in
  let expected =
    read_lines (Filename.concat root "test/fixtures/astlint/expected.txt")
  in
  if actual <> expected then begin
    Printf.eprintf "--- actual fixture diagnostics ---\n";
    List.iter (fun l -> Printf.eprintf "%s\n" l) actual;
    Printf.eprintf "--- end ---\n%!";
    Alcotest.failf "fixture diagnostics diverge from expected.txt (%d vs %d)"
      (List.length actual) (List.length expected)
  end

(* ---- false-negative guard ----------------------------------------- *)

let test_guard () =
  let outcome = Lazy.force fixture_outcome in
  match A.fixture_failures outcome with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "; " fs)

(* Every rule of the catalogue must be represented by at least one
   fixture finding — a rule with no mutant coverage could regress to
   never firing without any test noticing. *)
let test_all_rules_covered () =
  let outcome = Lazy.force fixture_outcome in
  let fired rule =
    List.exists (fun (d : D.t) -> d.rule = rule) outcome.A.report.D.diags
  in
  List.iter
    (fun rule ->
      if not (fired rule) then
        Alcotest.failf "no fixture finding for %s" rule)
    [
      A.Rules.rule_poly; A.Rules.rule_taint; A.Rules.rule_unsafe;
      A.Rules.rule_float; A.Rules.rule_swallow; A.Rules.rule_escape;
      A.Rules.rule_lock; A.Rules.rule_epoch; A.Rules.rule_alloc;
      A.Rules.rule_pure;
    ]

(* The old grep lint dropped any hit line that begins with a comment
   delimiter, so a definition sharing its line with a comment closer
   was invisible (tools/lint.sh kept the filter line-local on purpose).
   The typed walk must catch exactly that fixture. *)
let test_comment_mask_regression () =
  let outcome = Lazy.force fixture_outcome in
  let hit =
    List.exists
      (fun (d : D.t) ->
        d.rule = A.Rules.rule_poly
        && String.length d.message > 0
        &&
        let prefix = "test/fixtures/astlint/a1_comment_mask.ml:" in
        String.length d.message >= String.length prefix
        && String.sub d.message 0 (String.length prefix) = prefix)
      outcome.A.report.D.diags
  in
  if not hit then
    Alcotest.fail "comment-masked polymorphic compare not caught"

(* ---- the production tree is clean --------------------------------- *)

let test_tree_clean () =
  (* Under `dune runtest` the declared dep puts the allowlist in the
     build tree; under a bare `dune exec` from a checkout only the
     source copy exists. *)
  let allowlist_file =
    let candidates =
      [
        Filename.concat root "tools/astlint/allowlist.txt";
        "tools/astlint/allowlist.txt";
        "../tools/astlint/allowlist.txt";
        "../../tools/astlint/allowlist.txt";
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.fail "tools/astlint/allowlist.txt not found"
  in
  let budget_file =
    let candidates =
      [
        Filename.concat root "tools/astlint/alloc_budget.txt";
        "tools/astlint/alloc_budget.txt";
        "../tools/astlint/alloc_budget.txt";
        "../../tools/astlint/alloc_budget.txt";
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.fail "tools/astlint/alloc_budget.txt not found"
  in
  let outcome =
    A.analyze ~allowlist_file ~budget_file ~root ~dirs:A.default_dirs ()
  in
  if outcome.A.units = [] then Alcotest.fail "no production units scanned";
  match D.errors outcome.A.report with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "tree not clean (%d findings); first: %s"
        (List.length (D.errors outcome.A.report))
        (D.to_string d)

(* ---- domain-safety fact collection -------------------------------- *)

let fixture_unit base =
  let outcome = Lazy.force fixture_outcome in
  match
    List.find_opt
      (fun (u : A.Unit_info.t) -> Filename.basename u.source = base)
      outcome.A.units
  with
  | Some u -> u
  | None -> Alcotest.failf "fixture unit %s not scanned" base

(* The walk must record, for a value referenced under lambdas, the
   chain of enclosing closures with the callee each literal lambda was
   passed to — that chain is what the A6/A8 rules match par entries
   against. *)
let test_capture_chain () =
  let u = fixture_unit "a8_workspace.ml" in
  let ws =
    match
      List.find_opt
        (fun (c : A.Unit_info.capture) ->
          c.name = "ws"
          && c.c_encl = "Astlint_fixtures.A8_workspace.racy_shared")
        u.captures
    with
    | Some c -> c
    | None -> Alcotest.fail "no capture fact for ws in racy_shared"
  in
  Alcotest.(check string)
    "workspace type head" "Routing.Engine.Workspace.t" ws.tyhead;
  Alcotest.(check bool)
    "chain ends in the Parallel.map lambda" true
    (match List.rev ws.c_lambdas with
    | Some "Parallel.map" :: _ -> true
    | _ -> false);
  Alcotest.(check bool)
    "bound outside that lambda" true
    (ws.depth < List.length ws.c_lambdas)

(* Lock regions: accesses between Mutex.lock/unlock carry the held
   descriptor; the same access outside the region carries none. *)
let test_lock_regions () =
  let u = fixture_unit "a7_shard.ml" in
  let field_accesses encl =
    List.filter
      (fun (a : A.Unit_info.access) ->
        a.a_encl = "Astlint_fixtures.A7_shard." ^ encl
        &&
        match a.sort with
        | A.Unit_info.Field_write _ | A.Unit_info.Field_read _
        | A.Unit_info.Container_op { field = Some _; _ } ->
            true
        | _ -> false)
      u.accesses
  in
  let held_descrs (a : A.Unit_info.access) = List.map fst a.held in
  List.iter
    (fun a ->
      Alcotest.(check (list string))
        "racy_bump holds nothing" [] (held_descrs a))
    (field_accesses "racy_bump");
  (match field_accesses "ok_locked" with
  | [] -> Alcotest.fail "no field accesses collected in ok_locked"
  | l ->
      List.iter
        (fun a ->
          Alcotest.(check bool)
            "ok_locked holds the shard mutex" true
            (List.mem "Astlint_fixtures.A7_shard.shard.mutex"
               (held_descrs a)))
        l);
  (* Lock events: explode raises while locked, forget never releases. *)
  let leak = fixture_unit "a7_leak.ml" in
  let has p = List.exists p leak.locks in
  Alcotest.(check bool)
    "explode records a locked raise" true
    (has (fun (l : A.Unit_info.lock_occ) ->
         match l.ev with
         | A.Unit_info.Raise_locked { what = "failwith"; _ } ->
             l.l_encl = "Astlint_fixtures.A7_leak.explode"
         | _ -> false));
  Alcotest.(check bool)
    "forget acquires" true
    (has (fun (l : A.Unit_info.lock_occ) ->
         match l.ev with
         | A.Unit_info.Acquire _ ->
             l.l_encl = "Astlint_fixtures.A7_leak.forget"
         | _ -> false));
  Alcotest.(check bool)
    "forget never releases" false
    (has (fun (l : A.Unit_info.lock_occ) ->
         match l.ev with
         | A.Unit_info.Release _ ->
             l.l_encl = "Astlint_fixtures.A7_leak.forget"
         | _ -> false))

(* Mutex-sibling inference over the fixture record type. *)
let test_lockreg () =
  let outcome = Lazy.force fixture_outcome in
  let reg = A.Lockreg.build outcome.A.units in
  let rectype = "Astlint_fixtures.A7_shard.shard" in
  Alcotest.(check (option string))
    "count guarded" (Some "mutex")
    (A.Lockreg.guard reg ~rectype ~field:"count");
  Alcotest.(check (option string))
    "table guarded" (Some "mutex")
    (A.Lockreg.guard reg ~rectype ~field:"table");
  Alcotest.(check (option string))
    "the mutex itself is not guarded" None
    (A.Lockreg.guard reg ~rectype ~field:"mutex")

(* Stale-entry detection: an entry matching nothing must surface as an
   ast/allowlist-stale finding against the allowlist file itself. *)
let test_stale_allowlist () =
  let outcome = Lazy.force fixture_outcome in
  let allow =
    match
      A.Allowlist.parse_string
        "ast/poly-compare  No.Such.Symbol  -- decoy entry\n"
    with
    | Ok a -> a
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  let cfg = A.fixture_config allow A.Budget.empty in
  let reg = A.Typereg.build outcome.A.units in
  let graph = A.Callgraph.build outcome.A.units in
  let findings =
    A.Rules.apply ~allow_source:"allow.txt" cfg reg graph outcome.A.units
  in
  match
    List.find_opt
      (fun (f : A.Rules.finding) -> f.rule = A.Rules.rule_stale)
      findings
  with
  | Some f ->
      Alcotest.(check string) "reported against the file" "allow.txt"
        f.source;
      Alcotest.(check string) "names the entry" "No.Such.Symbol" f.symbol
  | None -> Alcotest.fail "stale allowlist entry produced no finding"

(* Budget ratchet: an entry whose symbol has no reachable allocation
   left must surface as ast/alloc-budget-stale against the manifest. *)
let test_stale_budget () =
  let outcome = Lazy.force fixture_outcome in
  let budget =
    match
      A.Budget.parse_string "No.Such.Kernel  3  -- decoy budget\n"
    with
    | Ok b -> b
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  let cfg =
    { (A.fixture_config A.Allowlist.empty A.Budget.empty) with
      A.Rules.budget }
  in
  let reg = A.Typereg.build outcome.A.units in
  let graph = A.Callgraph.build outcome.A.units in
  let findings =
    A.Rules.apply ~budget_source:"budget.txt" cfg reg graph outcome.A.units
  in
  match
    List.find_opt
      (fun (f : A.Rules.finding) -> f.rule = A.Rules.rule_budget_stale)
      findings
  with
  | Some f ->
      Alcotest.(check string) "reported against the file" "budget.txt"
        f.source;
      Alcotest.(check string) "names the entry" "No.Such.Kernel" f.symbol
  | None -> Alcotest.fail "stale budget entry produced no finding"

(* ---- digest cache -------------------------------------------------- *)

let test_cache_roundtrip () =
  let outcome = Lazy.force fixture_outcome in
  let u = List.hd outcome.A.units in
  let path = Filename.temp_file "astlint_cache" ".bin" in
  let c = A.Cmt_loader.Cache.empty () in
  A.Cmt_loader.Cache.store c ~digest:"d1" u;
  A.Cmt_loader.Cache.save c ~path;
  let c' = A.Cmt_loader.Cache.load ~path in
  (match A.Cmt_loader.Cache.lookup c' ~digest:"d1" with
  | Some u' ->
      Alcotest.(check string) "modname survives" u.modname u'.modname;
      Alcotest.(check string) "source survives" u.source u'.source;
      Alcotest.(check int)
        "accesses survive"
        (List.length u.accesses)
        (List.length u'.accesses)
  | None -> Alcotest.fail "stored unit not found after reload");
  Alcotest.(check bool)
    "unknown digest misses" true
    (A.Cmt_loader.Cache.lookup c' ~digest:"d2" = None);
  (* A truncated file must degrade to a cold cache, not raise. *)
  let oc = open_out path in
  output_string oc "garbage";
  close_out oc;
  let c'' = A.Cmt_loader.Cache.load ~path in
  Alcotest.(check bool)
    "corrupt cache is cold" true
    (A.Cmt_loader.Cache.lookup c'' ~digest:"d1" = None);
  Sys.remove path

(* ---- symbol canonicalization -------------------------------------- *)

let test_canon () =
  let eq = Alcotest.(check string) in
  eq "lib mangling" "Routing.Engine.compute"
    (A.Syms.canon_string "Routing__Engine.compute");
  eq "exe mangling" "Sbgp" (A.Syms.canon_string "Dune__exe__Sbgp");
  eq "operator parens" "Stdlib.=" (A.Syms.canon_string "Stdlib.( = )");
  Alcotest.(check bool)
    "spec covers below" true
    (A.Syms.spec_matches ~spec:"Routing.Reference"
       "Routing.Reference.compute");
  Alcotest.(check bool)
    "spec star" true
    (A.Syms.spec_matches ~spec:"Metric.H_metric.*" "Metric.H_metric.eval");
  Alcotest.(check bool)
    "no substring match" false
    (A.Syms.spec_matches ~spec:"Routing.Reach" "Routing.Reachable");
  Alcotest.(check bool)
    "dir scope" true
    (A.Syms.in_scope ~scopes:[ "lib/routing" ] "lib/routing/engine.ml");
  Alcotest.(check bool)
    "file scope exact" true
    (A.Syms.in_scope
       ~scopes:[ "lib/prelude/shard_cache.ml" ]
       "lib/prelude/shard_cache.ml");
  Alcotest.(check bool)
    "no dir prefix confusion" false
    (A.Syms.in_scope ~scopes:[ "lib/rout" ] "lib/routing/engine.ml")

(* ---- allowlist parser --------------------------------------------- *)

let test_allowlist () =
  (match
     A.Allowlist.parse_string
       "# comment\n\nast/float-compare  M.f  -- stored literal\n"
   with
  | Ok t ->
      Alcotest.(check bool)
        "permits the symbol" true
        (A.Allowlist.permits t ~rule:"ast/float-compare" "M.f");
      Alcotest.(check bool)
        "covers below" true
        (A.Allowlist.permits t ~rule:"ast/float-compare" "M.f.inner");
      Alcotest.(check bool)
        "other rule untouched" false
        (A.Allowlist.permits t ~rule:"ast/poly-compare" "M.f")
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match A.Allowlist.parse_string "ast/float-compare M.f\n" with
  | Ok _ -> Alcotest.fail "reasonless entry accepted"
  | Error _ -> ());
  match A.Allowlist.parse_string "just-one-token\n" with
  | Ok _ -> Alcotest.fail "malformed entry accepted"
  | Error _ -> ()

(* ---- allocation-budget parser ------------------------------------- *)

let test_budget () =
  (match
     A.Budget.parse_string "# hot-path budgets\n\nM.kernel  2  -- scratch\n"
   with
  | Ok t -> (
      (match A.Budget.find t "M.kernel" with
      | Some e ->
          Alcotest.(check int) "count parsed" 2 e.A.Budget.count;
          Alcotest.(check string) "reason parsed" "scratch" e.A.Budget.reason
      | None -> Alcotest.fail "entry not found");
      match A.Budget.find t "M.kernel.inner" with
      | Some _ -> ()
      | None -> Alcotest.fail "entry must cover symbols below it")
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match A.Budget.parse_string "M.kernel 2\n" with
  | Ok _ -> Alcotest.fail "reasonless entry accepted"
  | Error _ -> ());
  (match A.Budget.parse_string "M.kernel 0 -- zero\n" with
  | Ok _ -> Alcotest.fail "zero budget accepted (omit the entry instead)"
  | Error _ -> ());
  match A.Budget.parse_string "M.kernel two -- words\n" with
  | Ok _ -> Alcotest.fail "non-integer count accepted"
  | Error _ -> ()

let () =
  Alcotest.run "astlint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "corpus matches golden diagnostics" `Quick
            test_golden;
          Alcotest.test_case "false-negative guard holds" `Quick test_guard;
          Alcotest.test_case "every rule has mutant coverage" `Quick
            test_all_rules_covered;
          Alcotest.test_case "comment-masked compare caught (grep regression)"
            `Quick test_comment_mask_regression;
        ] );
      ( "tree",
        [
          Alcotest.test_case "production tree clean under allowlist" `Quick
            test_tree_clean;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "capture chain collected" `Quick
            test_capture_chain;
          Alcotest.test_case "lock regions collected" `Quick
            test_lock_regions;
          Alcotest.test_case "mutex-sibling guard inference" `Quick
            test_lockreg;
          Alcotest.test_case "stale allowlist entry flagged" `Quick
            test_stale_allowlist;
          Alcotest.test_case "stale budget entry flagged" `Quick
            test_stale_budget;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "symbol canonicalization" `Quick test_canon;
          Alcotest.test_case "allowlist parser" `Quick test_allowlist;
          Alcotest.test_case "alloc-budget parser" `Quick test_budget;
          Alcotest.test_case "digest cache roundtrip" `Quick
            test_cache_roundtrip;
        ] );
    ]
