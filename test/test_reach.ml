(* Perceivable-route reachability closures (Routing.Reach). *)

open Core
open Test_helpers

let test_customer_chain () =
  (* d=0 <- 1 <- 2 (providers upward); 3 a customer of 2. *)
  let g = graph 4 [ c2p 0 1; c2p 1 2; c2p 3 2 ] in
  let r = Reach.compute g ~root:0 () in
  Alcotest.(check bool) "1 customer" true (Reach.customer r 1);
  Alcotest.(check bool) "2 customer (chain)" true (Reach.customer r 2);
  Alcotest.(check bool) "3 not customer" false (Reach.customer r 3);
  Alcotest.(check bool) "3 provider (down from 2)" true (Reach.provider r 3);
  Alcotest.(check bool) "root in no set" false (Reach.any r 0 )

let test_peer_hop () =
  (* 1 has a customer route to d=0; 2 peers with 1; 3 peers with 2. *)
  let g = graph 4 [ c2p 0 1; p2p 1 2; p2p 2 3 ] in
  let r = Reach.compute g ~root:0 () in
  Alcotest.(check bool) "2 has peer route" true (Reach.peer r 2);
  (* Peer routes do not chain: 3 has nothing. *)
  Alcotest.(check bool) "3 has no peer route" false (Reach.peer r 3);
  Alcotest.(check bool) "3 unreachable" false (Reach.any r 3)

let test_peer_of_root () =
  let g = graph 3 [ p2p 0 1; c2p 1 2 ] in
  let r = Reach.compute g ~root:0 () in
  Alcotest.(check bool) "direct peer of root" true (Reach.peer r 1);
  (* 1's peer route is not exported to its provider 2... 2 is 1's
     provider?  c2p 1 2 = 1 customer of 2: yes.  But 2 can still never
     hear it (Ex), and has no other path. *)
  Alcotest.(check bool) "provider of peer unreachable" false (Reach.any r 2)

let test_provider_closure_from_peer () =
  (* 1 customer of d's peer?  Build: d=0 peers 1; 2 customer of 1:
     2 gets a provider route via 1 (1's peer route exports to customers). *)
  let g = graph 3 [ p2p 0 1; c2p 2 1 ] in
  let r = Reach.compute g ~root:0 () in
  Alcotest.(check bool) "peer route at 1" true (Reach.peer r 1);
  Alcotest.(check bool) "provider route at 2" true (Reach.provider r 2);
  Alcotest.(check string) "best class of 2" "provider"
    (match Reach.best_class r 2 with
    | Some c -> Policy.class_name c
    | None -> "none")

let test_avoid () =
  (* Chain d=0 <- 1 <- 2; avoiding 1 cuts everything above. *)
  let g = graph 3 [ c2p 0 1; c2p 1 2 ] in
  let r = Reach.compute g ~root:0 ~avoid:1 () in
  Alcotest.(check bool) "1 skipped" false (Reach.any r 1);
  Alcotest.(check bool) "2 unreachable without 1" false (Reach.any r 2)

let test_bad_args () =
  let g = graph 2 [ c2p 0 1 ] in
  Alcotest.check_raises "root out of range"
    (Invalid_argument "Reach.compute: root out of range") (fun () ->
      ignore (Reach.compute g ~root:5 ()));
  Alcotest.check_raises "root = avoid"
    (Invalid_argument "Reach.compute: root = avoid") (fun () ->
      ignore (Reach.compute g ~root:0 ~avoid:0 ()))

(* Any AS the engine reaches (legitimately) must be in the closure, with
   a class at least as good; the closure is complete w.r.t. actual
   routing. *)
let test_reach_covers_engine =
  qtest "engine outcomes lie within the closures" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dst = Rng.int rng n in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let out = Engine.compute g policy dep ~dst ~attacker:None in
      let r = Reach.compute g ~root:dst () in
      let ok = ref true in
      for v = 0 to n - 1 do
        if v <> dst && Outcome.reached out v then begin
          (* The chosen class must be one of the perceivable classes. *)
          if not (Reach.in_class r (Outcome.route_class out v) v) then begin
            Printf.eprintf "seed %d: AS %d chose %s not in closure\n%!" seed v
              (Policy.class_name (Outcome.route_class out v));
            ok := false
          end
        end
      done;
      !ok)

(* And conversely: an AS in any closure can actually be routed to the
   root under the standard policy (the closure is not vacuous). *)
let test_reach_sound_vs_engine =
  qtest "closure membership implies engine reachability" ~count:200
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dst = Rng.int rng n in
      let out =
        Engine.compute g
          (Policy.make Policy.Security_third)
          (Deployment.empty n) ~dst ~attacker:None
      in
      let r = Reach.compute g ~root:dst () in
      let ok = ref true in
      for v = 0 to n - 1 do
        if v <> dst && Reach.any r v && not (Outcome.reached out v) then begin
          Printf.eprintf "seed %d: AS %d in closure but unreached\n%!" seed v;
          ok := false
        end
      done;
      !ok)

(* The view-based closure over a delta overlay must agree with the
   closure on the materialized post-delta graph — the overlay is how the
   topology-delta cone measures "new side" reachability without building
   the edited graph. *)
let test_reach_overlay =
  qtest "closure over overlay equals closure on applied graph" ~count:200
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let delta = random_delta rng g in
      let applied = Graph.Delta.apply g delta in
      let root = Rng.int rng n in
      let a = Reach.compute_view (Graph.overlay g delta) ~root () in
      let b = Reach.compute applied ~root () in
      let ok = ref true in
      for v = 0 to n - 1 do
        if
          Reach.customer a v <> Reach.customer b v
          || Reach.peer a v <> Reach.peer b v
          || Reach.provider a v <> Reach.provider b v
        then begin
          Printf.eprintf "seed %d: AS %d closure mismatch over overlay\n%!"
            seed v;
          ok := false
        end
      done;
      !ok)

let () =
  Alcotest.run "reach"
    [
      ( "closures",
        [
          Alcotest.test_case "customer chain" `Quick test_customer_chain;
          Alcotest.test_case "peer hop" `Quick test_peer_hop;
          Alcotest.test_case "peer of root" `Quick test_peer_of_root;
          Alcotest.test_case "provider closure" `Quick
            test_provider_closure_from_peer;
          Alcotest.test_case "avoid" `Quick test_avoid;
          Alcotest.test_case "bad arguments" `Quick test_bad_args;
        ] );
      ( "vs engine",
        [ test_reach_covers_engine; test_reach_sound_vs_engine ] );
      ("overlay", [ test_reach_overlay ]);
    ]
