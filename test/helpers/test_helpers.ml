(* Shared helpers for the alcotest/qcheck suites. *)

module G = Core.Graph

(* Tiny edge-list DSL: [c2p a b] makes [a] a customer of [b]. *)
let c2p a b = G.Customer_provider (a, b)
let p2p a b = G.Peer_peer (a, b)
let graph n edges = G.of_edges ~n edges

(* Random annotated AS graph: node 0 is the top of the hierarchy; every
   other node takes at least one provider with a smaller id, so the graph
   is connected and the hierarchy acyclic by construction.  Random peer
   edges are sprinkled on top. *)
let random_graph rng ~max_n =
  let n = 3 + Core.Rng.int rng (max_n - 2) in
  let edges = ref [] in
  let seen = Hashtbl.create 16 in
  let key a b = if a < b then (a, b) else (b, a) in
  let try_add e a b =
    if a <> b && not (Hashtbl.mem seen (key a b)) then begin
      Hashtbl.replace seen (key a b) ();
      edges := e :: !edges
    end
  in
  for v = 1 to n - 1 do
    let n_prov = 1 + Core.Rng.int rng 2 in
    for _ = 1 to n_prov do
      let p = Core.Rng.int rng v in
      try_add (c2p v p) v p
    done
  done;
  let n_peer = Core.Rng.int rng (2 * n) in
  for _ = 1 to n_peer do
    let a = Core.Rng.int rng n and b = Core.Rng.int rng n in
    try_add (p2p a b) a b
  done;
  graph n !edges

(* Random valid topology delta against [g]: flip the class of up to
   three distinct edges, remove one, and add one brand-new pair (when a
   non-adjacent pair turns up quickly).  Distinct pairs throughout, as
   [Graph.Delta] requires. *)
let random_delta rng g =
  let n = G.n g in
  let edge_pair = function
    | G.Customer_provider (a, b) | G.Peer_peer (a, b) ->
        if a < b then (a, b) else (b, a)
  in
  let edges = Array.of_list (G.edges g) in
  let used = Hashtbl.create 8 in
  let claim e =
    let p = edge_pair e in
    if Hashtbl.mem used p then false
    else begin
      Hashtbl.replace used p ();
      true
    end
  in
  let ops = ref [] in
  let flip = function
    | G.Customer_provider (a, b) -> G.Peer_peer (min a b, max a b)
    | G.Peer_peer (a, b) -> G.Customer_provider (a, b)
  in
  for _ = 1 to 1 + Core.Rng.int rng 3 do
    if Array.length edges > 0 then begin
      let e = edges.(Core.Rng.int rng (Array.length edges)) in
      if claim e then ops := G.Delta.Flip (flip e) :: !ops
    end
  done;
  if Array.length edges > 0 then begin
    let e = edges.(Core.Rng.int rng (Array.length edges)) in
    if claim e then ops := G.Delta.Remove e :: !ops
  end;
  (let tries = ref 10 in
   let found = ref false in
   while (not !found) && !tries > 0 do
     decr tries;
     let a = Core.Rng.int rng n and b = Core.Rng.int rng n in
     if a <> b && G.relationship g a b = None then
       if claim (p2p (min a b) (max a b)) then begin
         ops := G.Delta.Add (p2p (min a b) (max a b)) :: !ops;
         found := true
       end
   done);
  Array.of_list (List.rev !ops)

(* Random deployment over the same graph. *)
let random_deployment rng n =
  let modes =
    Array.init n (fun _ ->
        match Core.Rng.int rng 4 with
        | 0 | 1 -> Core.Deployment.Off
        | 2 -> Core.Deployment.Simplex
        | _ -> Core.Deployment.Full)
  in
  Core.Deployment.of_modes modes

let random_policy rng =
  let model =
    match Core.Rng.int rng 3 with
    | 0 -> Core.Policy.Security_first
    | 1 -> Core.Policy.Security_second
    | _ -> Core.Policy.Security_third
  in
  let lp =
    match Core.Rng.int rng 3 with
    | 0 -> Core.Policy.Standard
    | 1 -> Core.Policy.Lp_k (1 + Core.Rng.int rng 3)
    | _ -> Core.Policy.Lp_k (1 + Core.Rng.int rng 40)
  in
  Core.Policy.make ~lp model

(* Compare two outcomes field by field; returns a description of the first
   mismatch. *)
let outcome_mismatch a b =
  let n = Core.Outcome.n a in
  let describe v field va vb =
    Some (Printf.sprintf "AS %d: %s differs (%s vs %s)" v field va vb)
  in
  let rec go v =
    if v >= n then None
    else begin
      let ra = Core.Outcome.reached a v and rb = Core.Outcome.reached b v in
      if ra <> rb then
        describe v "reached" (string_of_bool ra) (string_of_bool rb)
      else if not ra then go (v + 1)
      else if Core.Outcome.length a v <> Core.Outcome.length b v then
        describe v "length"
          (string_of_int (Core.Outcome.length a v))
          (string_of_int (Core.Outcome.length b v))
      else if Core.Outcome.secure a v <> Core.Outcome.secure b v then
        describe v "secure"
          (string_of_bool (Core.Outcome.secure a v))
          (string_of_bool (Core.Outcome.secure b v))
      else if Core.Outcome.to_d a v <> Core.Outcome.to_d b v then
        describe v "to_d"
          (string_of_bool (Core.Outcome.to_d a v))
          (string_of_bool (Core.Outcome.to_d b v))
      else if Core.Outcome.to_m a v <> Core.Outcome.to_m b v then
        describe v "to_m"
          (string_of_bool (Core.Outcome.to_m a v))
          (string_of_bool (Core.Outcome.to_m b v))
      else if
        v <> Core.Outcome.dst a
        && Core.Outcome.attacker a <> Some v
        && Core.Outcome.route_class a v <> Core.Outcome.route_class b v
      then
        describe v "class"
          (Core.Policy.class_name (Core.Outcome.route_class a v))
          (Core.Policy.class_name (Core.Outcome.route_class b v))
      else go (v + 1)
    end
  in
  go 0

(* qcheck boilerplate: seed-driven properties. *)
let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let qtest name ?(count = 200) prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count seed_arb prop)

let check_none what = function
  | None -> true
  | Some msg ->
      Printf.eprintf "%s: %s\n%!" what msg;
      false
