(* Domain-based parallel map. *)

open Core

let test_map_matches_sequential () =
  let items = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        (Array.map f items)
        (Parallel.map ~domains f items))
    [ 1; 2; 3; 7 ]

let test_map_empty () =
  Alcotest.(check (array int)) "empty" [||]
    (Parallel.map ~domains:4 (fun x -> x) [||])

let test_map_single () =
  Alcotest.(check (array int)) "singleton" [| 42 |]
    (Parallel.map ~domains:4 (fun x -> x + 41) [| 1 |])

let test_map_reduce () =
  let items = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "sum 1..100" 5050
    (Parallel.map_reduce ~domains:3 ~map:Fun.id ~combine:( + ) 0 items)

let test_parallel_metric_agrees () =
  (* h_metric with domains must equal the sequential result exactly. *)
  let r = Topogen.generate ~params:(Topogen.default_params ~n:1200) (Rng.create 4) in
  let g = r.Topogen.graph in
  let rng = Rng.create 5 in
  let n = Graph.n g in
  let attackers = Rng.sample_without_replacement rng 6 n in
  let dsts = Rng.sample_without_replacement rng 6 n in
  let pairs = Metric.pairs ~attackers ~dsts () in
  let policy = Policy.make Policy.Security_second in
  let dep = Deployment.empty n in
  let seq = Metric.h_metric g policy dep pairs in
  let par = Metric.h_metric ~domains:3 g policy dep pairs in
  Alcotest.(check (float 1e-12)) "lb" seq.Metric.lb par.Metric.lb;
  Alcotest.(check (float 1e-12)) "ub" seq.Metric.ub par.Metric.ub

let test_default_domains () =
  Alcotest.(check bool) "positive" true (Parallel.default_domains () >= 1)

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "empty" `Quick test_map_empty;
          Alcotest.test_case "single" `Quick test_map_single;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "default domains" `Quick test_default_domains;
        ] );
      ( "metric",
        [
          Alcotest.test_case "parallel metric agrees" `Quick
            test_parallel_metric_agrees;
        ] );
    ]
