(* Domain-based parallel map. *)

open Core

let test_map_matches_sequential () =
  let items = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        (Array.map f items)
        (Parallel.map ~domains f items))
    [ 1; 2; 3; 7 ]

let test_map_empty () =
  Alcotest.(check (array int)) "empty" [||]
    (Parallel.map ~domains:4 (fun x -> x) [||])

let test_map_single () =
  Alcotest.(check (array int)) "singleton" [| 42 |]
    (Parallel.map ~domains:4 (fun x -> x + 41) [| 1 |])

let test_map_reduce () =
  let items = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "sum 1..100" 5050
    (Parallel.map_reduce ~domains:3 ~map:Fun.id ~combine:( + ) 0 items)

let test_parallel_metric_agrees () =
  (* h_metric with domains must equal the sequential result exactly. *)
  let r = Topogen.generate ~params:(Topogen.default_params ~n:1200) (Rng.create 4) in
  let g = r.Topogen.graph in
  let rng = Rng.create 5 in
  let n = Graph.n g in
  let attackers = Rng.sample_without_replacement rng 6 n in
  let dsts = Rng.sample_without_replacement rng 6 n in
  let pairs = Metric.pairs ~attackers ~dsts () in
  let policy = Policy.make Policy.Security_second in
  let dep = Deployment.empty n in
  let seq = Metric.h_metric g policy dep pairs in
  let par = Metric.h_metric ~domains:3 g policy dep pairs in
  Alcotest.(check (float 1e-12)) "lb" seq.Metric.lb par.Metric.lb;
  Alcotest.(check (float 1e-12)) "ub" seq.Metric.ub par.Metric.ub

let test_default_domains () =
  Alcotest.(check bool) "positive" true (Parallel.default_domains () >= 1)

let test_pool_reuse () =
  (* One persistent pool serving many maps of different shapes. *)
  let pool = Parallel.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 3 (Parallel.Pool.size pool);
      List.iter
        (fun n ->
          let items = Array.init n (fun i -> i) in
          let f x = (x * 3) - 7 in
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d" n)
            (Array.map f items)
            (Parallel.Pool.map pool f items))
        [ 0; 1; 2; 17; 1000; 5 ])

let test_pool_nested () =
  (* A map launched from inside a pool worker must not deadlock; it
     degrades to sequential execution and still returns exact results. *)
  let pool = Parallel.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let outer = Array.init 8 (fun i -> i) in
      let expected =
        Array.map (fun i -> Array.init 10 (fun j -> (i * 10) + j)) outer
      in
      let got =
        Parallel.map ~pool
          (fun i ->
            Parallel.map ~pool (fun j -> (i * 10) + j) (Array.init 10 Fun.id))
          outer
      in
      Alcotest.(check int) "rows" (Array.length expected) (Array.length got);
      Array.iteri
        (fun i row -> Alcotest.(check (array int)) "row" expected.(i) row)
        got)

let test_pool_exception () =
  let pool = Parallel.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let items = Array.init 100 (fun i -> i) in
      (try
         ignore
           (Parallel.Pool.map pool
              (fun x -> if x = 63 then failwith "boom" else x)
              items);
         Alcotest.fail "expected exception"
       with Failure msg -> Alcotest.(check string) "msg" "boom" msg);
      (* The pool survives a failed map. *)
      Alcotest.(check (array int))
        "after failure" (Array.map succ items)
        (Parallel.Pool.map pool succ items))

let test_pool_metric_agrees () =
  (* Seeded end-to-end check: h_metric through an explicit pool of 4
     domains must equal the sequential result exactly (not within a
     tolerance - the reduction order is identical by construction). *)
  let r =
    Topogen.generate ~params:(Topogen.default_params ~n:900) (Rng.create 11)
  in
  let g = r.Topogen.graph in
  let rng = Rng.create 12 in
  let n = Graph.n g in
  let attackers = Rng.sample_without_replacement rng 7 n in
  let dsts = Rng.sample_without_replacement rng 7 n in
  let pairs = Metric.pairs ~attackers ~dsts () in
  let dep = Deployment.empty n in
  let pool = Parallel.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun model ->
          let policy = Policy.make model in
          let seq = Metric.h_metric g policy dep pairs in
          let par = Metric.h_metric ~pool g policy dep pairs in
          Alcotest.(check bool)
            (Policy.name policy ^ " identical")
            true (seq = par))
        Policy.[ Security_first; Security_second; Security_third ])

let outcomes_equal a b =
  let n = Outcome.n a in
  Outcome.n b = n
  && Outcome.dst a = Outcome.dst b
  && Outcome.attacker a = Outcome.attacker b
  &&
  let ok = ref true in
  let root v = v = Outcome.dst a || Outcome.attacker a = Some v in
  for v = 0 to n - 1 do
    if
      Outcome.reached a v <> Outcome.reached b v
      || (Outcome.reached a v && (not (root v))
         && (Outcome.length a v <> Outcome.length b v
            || Outcome.route_class a v <> Outcome.route_class b v
            || Outcome.next_hop a v <> Outcome.next_hop b v))
      || Outcome.secure a v <> Outcome.secure b v
      || Outcome.to_d a v <> Outcome.to_d b v
      || Outcome.to_m a v <> Outcome.to_m b v
    then ok := false
  done;
  !ok

let test_workspace_agrees () =
  (* Engine.compute with a reused workspace must produce the same outcome
     as fresh allocation, across many pairs recycled through one ws. *)
  let r =
    Topogen.generate ~params:(Topogen.default_params ~n:700) (Rng.create 21)
  in
  let g = r.Topogen.graph in
  let n = Graph.n g in
  let tiers = Topogen.tiers r in
  let dep = Deployment.tier1_tier2 g tiers ~n_t1:5 ~n_t2:10 in
  let rng = Rng.create 22 in
  let vs = Rng.sample_without_replacement rng 12 n in
  let ws = Engine.Workspace.create 0 in
  List.iter
    (fun model ->
      let policy = Policy.make model in
      for i = 0 to Array.length vs - 2 do
        let dst = vs.(i) and attacker = vs.(i + 1) in
        let fresh = Engine.compute g policy dep ~dst ~attacker:(Some attacker) in
        let reused =
          Engine.compute ~ws g policy dep ~dst ~attacker:(Some attacker)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s dst=%d m=%d" (Policy.name policy) dst attacker)
          true
          (outcomes_equal fresh reused);
        (* No-attacker computes interleave to vary the reset pattern. *)
        let fresh0 = Engine.compute g policy dep ~dst ~attacker:None in
        let reused0 = Engine.compute ~ws g policy dep ~dst ~attacker:None in
        Alcotest.(check bool) "baseline" true (outcomes_equal fresh0 reused0)
      done)
    Policy.[ Security_first; Security_second; Security_third ]

let test_workspace_partition_agrees () =
  let r =
    Topogen.generate ~params:(Topogen.default_params ~n:700) (Rng.create 31)
  in
  let g = r.Topogen.graph in
  let n = Graph.n g in
  let rng = Rng.create 32 in
  let vs = Rng.sample_without_replacement rng 10 n in
  let ws = Engine.Workspace.create 0 in
  List.iter
    (fun model ->
      let policy = Policy.make model in
      for i = 0 to Array.length vs - 2 do
        let dst = vs.(i) and attacker = vs.(i + 1) in
        let plain = Partition.count g policy ~attacker ~dst in
        let reused = Partition.count ~ws g policy ~attacker ~dst in
        Alcotest.(check bool)
          (Printf.sprintf "%s dst=%d m=%d" (Policy.name policy) dst attacker)
          true (plain = reused)
      done)
    Policy.[ Security_first; Security_second; Security_third ]

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "empty" `Quick test_map_empty;
          Alcotest.test_case "single" `Quick test_map_single;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "default domains" `Quick test_default_domains;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse across maps" `Quick test_pool_reuse;
          Alcotest.test_case "nested map degrades" `Quick test_pool_nested;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception;
        ] );
      ( "metric",
        [
          Alcotest.test_case "parallel metric agrees" `Quick
            test_parallel_metric_agrees;
          Alcotest.test_case "pool metric identical" `Quick
            test_pool_metric_agrees;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "engine outcome identical" `Quick
            test_workspace_agrees;
          Alcotest.test_case "partition counts identical" `Quick
            test_workspace_partition_agrees;
        ] );
    ]
