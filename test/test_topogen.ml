(* Synthetic topology generator: structural invariants. *)

open Core

let gen ?(n = 1500) seed =
  Topogen.generate ~params:(Topogen.default_params ~n) (Rng.create seed)

let test_deterministic () =
  let a = gen 42 and b = gen 42 in
  Alcotest.(check bool) "same graph for same seed" true
    (Graph.edges a.Topogen.graph = Graph.edges b.Topogen.graph)

let test_seed_changes_graph () =
  let a = gen 1 and b = gen 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Graph.edges a.Topogen.graph <> Graph.edges b.Topogen.graph)

let structural_props seed =
  let r = gen seed in
  let g = r.Topogen.graph in
  let ok = ref true in
  let check name cond =
    if not cond then begin
      Printf.eprintf "topogen seed %d: %s failed\n%!" seed name;
      ok := false
    end
  in
  check "acyclic" (Graph.acyclic_hierarchy g);
  check "connected" (Graph.connected g);
  (* Only the Tier 1s lack providers. *)
  let providerless = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if Array.length (Graph.providers g v) = 0 then begin
      incr providerless;
      check "provider-less is level 0" (r.Topogen.levels.(v) = 0)
    end
  done;
  check "provider-less count = T1 count"
    (!providerless = (Topogen.default_params ~n:1500).Topogen.n_t1);
  (* Stub share is large (the paper's graph has ~85%). *)
  let stubs = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if Graph.is_stub g v then incr stubs
  done;
  let frac = float_of_int !stubs /. float_of_int (Graph.n g) in
  check "stub fraction in [0.6, 0.95]" (frac > 0.6 && frac < 0.95);
  (* Some stubs are homed exclusively to Tier 1s (Section 5.2.3 needs
     them). *)
  let t1_stubs = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if
      Graph.is_stub g v
      && Array.length (Graph.providers g v) > 0
      && Array.for_all (fun p -> r.Topogen.levels.(p) = 0) (Graph.providers g v)
    then incr t1_stubs
  done;
  check "has Tier-1 stubs" (!t1_stubs > 0);
  !ok

let test_structure =
  Test_helpers.qtest "structural invariants" ~count:15 structural_props

let test_tiers_alignment () =
  let r = gen 7 in
  let tiers = Topogen.tiers r in
  (* All designated CPs classify as CP. *)
  Array.iter
    (fun cp ->
      Alcotest.(check string) "designated CP classified CP" "CP"
        (Tiers.tier_name (Tiers.tier_of tiers cp)))
    r.Topogen.cps;
  (* Generated T1s (level 0) classify as T1. *)
  for v = 0 to Graph.n r.Topogen.graph - 1 do
    if r.Topogen.levels.(v) = 0 then
      Alcotest.(check string) "level-0 classified T1" "T1"
        (Tiers.tier_name (Tiers.tier_of tiers v))
  done

let test_degree_skew () =
  (* Customer degrees must be heavy-tailed: the top AS should dwarf the
     median transit AS. *)
  let r = gen 3 in
  let g = r.Topogen.graph in
  let degs =
    List.init (Graph.n g) (fun v -> Graph.customer_degree g v)
    |> List.sort (fun a b -> compare b a)
  in
  match degs with
  | top :: _ ->
      (* heavy tail: the largest customer cone should be a sizable
         fraction of the graph (n/20) and dwarf the mean customer
         degree. *)
      let mean =
        float_of_int (Graph.num_customer_provider_edges g)
        /. float_of_int (Graph.n g)
      in
      Alcotest.(check bool) "top customer degree > n/20" true
        (top > Graph.n g / 20);
      Alcotest.(check bool) "top degree >> mean" true
        (float_of_int top > 10. *. mean)
  | [] -> Alcotest.fail "empty graph"

let test_t1_clique () =
  let r = gen 11 in
  let g = r.Topogen.graph in
  let t1s =
    List.filter
      (fun v -> r.Topogen.levels.(v) = 0)
      (List.init (Graph.n g) (fun i -> i))
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            Alcotest.(check bool) "T1s peer pairwise" true
              (Array.exists (( = ) b) (Graph.peers g a)))
        t1s)
    t1s

let test_edge_ratio () =
  (* The peer/customer edge ratio should be in the rough vicinity of the
     UCLA graph's (62129/73442 ~ 0.85); we accept a broad band. *)
  let r = gen 19 in
  let g = r.Topogen.graph in
  let ratio =
    float_of_int (Graph.num_peer_edges g)
    /. float_of_int (Graph.num_customer_provider_edges g)
  in
  Alcotest.(check bool)
    (Printf.sprintf "peer/customer ratio %.2f in [0.3, 1.5]" ratio)
    true
    (ratio > 0.3 && ratio < 1.5)

let test_too_small_n () =
  Alcotest.(check bool) "small n raises" true
    (try
       ignore
         (Topogen.generate
            ~params:(Topogen.default_params ~n:2000)
            (Rng.create 0));
       (* n=2000 is fine; now force a contradiction. *)
       let p = { (Topogen.default_params ~n:2000) with Topogen.n = 300 } in
       ignore (Topogen.generate ~params:p (Rng.create 0));
       false
     with Invalid_argument _ -> true)

(* ---- Calibration scaling and knob validation (PR 9) --------------- *)

let test_calibration_params () =
  (* At and below the UCLA-2012 calibration point the defaults are the
     historical absolutes. *)
  let p = Topogen.default_params ~n:4000 in
  Alcotest.(check int) "n_t1 at 4000" 13 p.Topogen.n_t1;
  Alcotest.(check int) "n_t2 at 4000" 100 p.Topogen.n_t2;
  Alcotest.(check int) "n_small_cp at 4000" 300 p.Topogen.n_small_cp;
  let p = Topogen.default_params ~n:Topogen.calibration_n in
  Alcotest.(check int) "n_t2 at calibration" 100 p.Topogen.n_t2;
  Alcotest.(check int) "n_cp at calibration" 17 p.Topogen.n_cp;
  (* Above it, the transit/edge tiers scale proportionally with n. *)
  let p = Topogen.default_params ~n:(2 * Topogen.calibration_n) in
  Alcotest.(check int) "n_t2 doubles" 200 p.Topogen.n_t2;
  Alcotest.(check int) "n_t3 doubles" 200 p.Topogen.n_t3;
  Alcotest.(check int) "n_cp doubles" 34 p.Topogen.n_cp;
  Alcotest.(check int) "n_small_cp doubles" 600 p.Topogen.n_small_cp;
  Alcotest.(check int) "n_t1 stays 13" 13 p.Topogen.n_t1

let expect_knob what knob p =
  match Topogen.generate ~params:p (Rng.create 0) with
  | _ -> Alcotest.failf "%s: degenerate params accepted" what
  | exception Invalid_argument msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S names %S" what msg knob)
        true (contains msg knob)

let test_knob_validation () =
  let base = Topogen.default_params ~n:4000 in
  expect_knob "frac > 1" "frac_mid" { base with Topogen.frac_mid = 1.5 };
  expect_knob "frac < 0" "frac_t1_stub" { base with Topogen.frac_t1_stub = -0.1 };
  expect_knob "frac NaN" "frac_stub_x" { base with Topogen.frac_stub_x = Float.nan };
  expect_knob "p zero" "stub_provider_p" { base with Topogen.stub_provider_p = 0. };
  expect_knob "p above 1" "stub_provider_p"
    { base with Topogen.stub_provider_p = 1.5 };
  expect_knob "tier zero" "n_t1" { base with Topogen.n_t1 = 0 };
  expect_knob "tier negative" "n_small_cp" { base with Topogen.n_small_cp = -3 };
  expect_knob "degree negative" "cp_peer_degree"
    { base with Topogen.cp_peer_degree = -1 };
  (* Above the calibration point, keeping the small-n absolutes is a
     silent degeneration — rejected, naming the knob. *)
  let big = 3 * Topogen.calibration_n in
  expect_knob "stale tier above calibration" "n_t2"
    { (Topogen.default_params ~n:big) with Topogen.n_t2 = 100 };
  expect_knob "stale edge tier above calibration" "n_small_cp"
    { (Topogen.default_params ~n:big) with Topogen.n_small_cp = 300 }

let () =
  Alcotest.run "topogen"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_graph;
          test_structure;
          Alcotest.test_case "tiers align" `Quick test_tiers_alignment;
          Alcotest.test_case "degree skew" `Quick test_degree_skew;
          Alcotest.test_case "T1 clique" `Quick test_t1_clique;
          Alcotest.test_case "edge ratio" `Quick test_edge_ratio;
          Alcotest.test_case "n too small" `Quick test_too_small_n;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "default params scale" `Quick
            test_calibration_params;
          Alcotest.test_case "knob validation" `Quick test_knob_validation;
        ] );
    ]
