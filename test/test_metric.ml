(* The H metric and the doomed/protectable/immune partitions. *)

open Core
open Test_helpers

let sec1 = Policy.make Policy.Security_first
let sec2 = Policy.make Policy.Security_second
let sec3 = Policy.make Policy.Security_third

let test_bounds_arith () =
  let a = { Metric.lb = 0.4; ub = 0.6 } and b = { Metric.lb = 0.1; ub = 0.2 } in
  let s = Metric.bounds_sub a b in
  Alcotest.(check (float 1e-9)) "sub lb" 0.2 s.Metric.lb;
  Alcotest.(check (float 1e-9)) "sub ub" 0.5 s.Metric.ub;
  let t = Metric.bounds_add a b in
  Alcotest.(check (float 1e-9)) "add lb" 0.5 t.Metric.lb;
  let h = Metric.bounds_scale 2. b in
  Alcotest.(check (float 1e-9)) "scale" 0.4 h.Metric.ub

let test_pp_bounds () =
  (* Collapse iff both endpoints render the same at 0.1pp precision; the
     old epsilon test (5e-4) conflated e.g. 0.12% and 0.16%. *)
  let pp lb ub = Metric.pp_bounds { Metric.lb; ub } in
  Alcotest.(check string) "distinct prints stay an interval" "[0.1%, 0.2%]"
    (pp 0.0012 0.0016);
  Alcotest.(check string) "same print collapses" "0.1%" (pp 0.0012 0.0013);
  Alcotest.(check string) "exact equality collapses" "50.0%" (pp 0.5 0.5);
  Alcotest.(check string) "wide interval" "[10.0%, 90.0%]" (pp 0.1 0.9)

let test_progress () =
  let rng = Core.Rng.create 5 in
  let g = random_graph rng ~max_n:25 in
  let n = Graph.n g in
  let pairs =
    Metric.pairs
      ~attackers:(Core.Rng.sample_without_replacement rng (min 4 n) n)
      ~dsts:(Core.Rng.sample_without_replacement rng (min 4 n) n)
      ()
  in
  let dep = random_deployment rng n in
  (* Sequential: one tick per pair, [done] exact and final. *)
  let ticks = ref 0 and last = ref (0, 0) in
  ignore
    (Metric.h_metric
       ~progress:(fun d t ->
         incr ticks;
         last := (d, t))
       g sec2 dep pairs);
  Alcotest.(check int) "sequential ticks once per pair" (Array.length pairs)
    !ticks;
  Alcotest.(check (pair int int))
    "sequential finishes at total"
    (Array.length pairs, Array.length pairs)
    !last;
  (* Pooled: the callback still ticks (caller steals some work), never
     from a worker domain, and [done] never exceeds [total]. *)
  let pool = Core.Parallel.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Core.Parallel.Pool.shutdown pool)
    (fun () ->
      let caller = (Domain.self () :> int) in
      let pool_ticks = ref 0 and ok = ref true in
      ignore
        (Metric.h_metric ~pool
           ~progress:(fun d t ->
             incr pool_ticks;
             if (Domain.self () :> int) <> caller then ok := false;
             if d > t then ok := false)
           g sec2 dep pairs);
      Alcotest.(check bool) "pooled progress ticks from the caller" true
        (!pool_ticks > 0 && !pool_ticks <= Array.length pairs && !ok))

let test_happy_counts () =
  (* Figure 2 graph, security 3rd, S = {}: sources 1,2,3,5; under attack
     by 4: AS 3 is on the attack path (doomed), 2 doomed, 1 doomed
     (4-hop peer beats nothing else... 1's options: provider route len 1
     vs peer route len 4: LP prefers peer!  So 1 unhappy), 5 happy. *)
  let g =
    graph 6 [ c2p 1 0; p2p 1 2; p2p 2 0; c2p 3 2; c2p 4 3; c2p 5 0 ]
  in
  let out = Engine.compute g sec3 (Deployment.empty 6) ~dst:0 ~attacker:(Some 4) in
  let c = Metric.happy out in
  Alcotest.(check int) "sources" 4 c.Metric.sources;
  Alcotest.(check int) "happy lb" 1 c.Metric.happy_lb;
  Alcotest.(check int) "happy ub" 1 c.Metric.happy_ub

let test_pairs () =
  let ps = Metric.pairs ~attackers:[| 0; 1 |] ~dsts:[| 0; 2 |] () in
  Alcotest.(check int) "diagonal removed" 3 (Array.length ps);
  let rng = Rng.create 1 in
  let sampled =
    Metric.pairs ~rng ~max_pairs:2 ~attackers:[| 0; 1; 2 |] ~dsts:[| 3; 4; 5 |] ()
  in
  Alcotest.(check int) "sampled size" 2 (Array.length sampled)

let test_pairs_requires_rng () =
  Alcotest.check_raises "no rng" (Invalid_argument "Metric.pairs: sampling requires ~rng")
    (fun () ->
      ignore (Metric.pairs ~max_pairs:1 ~attackers:[| 0; 1 |] ~dsts:[| 2 |] ()))

let test_lb_below_ub =
  qtest "metric lower bound <= upper bound" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let attackers = Rng.sample_without_replacement rng (min 3 n) n in
      let dsts = Rng.sample_without_replacement rng (min 3 n) n in
      let ps = Metric.pairs ~attackers ~dsts () in
      if Array.length ps = 0 then true
      else begin
        let b = Metric.h_metric g policy dep ps in
        b.Metric.lb <= b.Metric.ub +. 1e-9
      end)

(* The baseline metric H(emptyset) is model-independent: with no secure
   AS, the SecP step never fires. *)
let test_baseline_model_independent =
  qtest "baseline metric is model independent" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dep = Deployment.empty n in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let out p = Engine.compute g p dep ~dst ~attacker:(Some m) in
        let h p = Metric.happy (out p) in
        h sec1 = h sec2 && h sec2 = h sec3
      end)

(* Partition soundness: immune ASes are happy and doomed ASes unhappy in
   EVERY deployment (spot-checked with random deployments). *)
let test_partition_soundness =
  qtest "immune always happy, doomed never happy" ~count:150 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let policy =
          match Rng.int rng 4 with
          | 0 -> sec1
          | 1 -> sec2
          | 2 -> sec3
          | _ -> Policy.make ~lp:(Policy.Lp_k (1 + Rng.int rng 3))
                   (match Rng.int rng 2 with
                   | 0 -> Policy.Security_second
                   | _ -> Policy.Security_third)
        in
        let classes = Partition.compute g policy ~attacker:m ~dst in
        let ok = ref true in
        for _ = 1 to 4 do
          let dep = random_deployment rng n in
          let out = Engine.compute g policy dep ~dst ~attacker:(Some m) in
          for v = 0 to n - 1 do
            if v <> dst && v <> m then begin
              match classes.(v) with
              | Partition.Immune ->
                  if not (Outcome.happy_lb out v) then begin
                    Printf.eprintf "seed %d: immune %d unhappy (%s)\n%!" seed v
                      (Policy.name policy);
                    ok := false
                  end
              | Partition.Doomed ->
                  if Outcome.happy_ub out v then begin
                    Printf.eprintf "seed %d: doomed %d happy (%s)\n%!" seed v
                      (Policy.name policy);
                    ok := false
                  end
              | Partition.Unreachable ->
                  if Outcome.reached out v then begin
                    Printf.eprintf "seed %d: unreachable %d reached (%s)\n%!"
                      seed v (Policy.name policy);
                    ok := false
                  end
              | Partition.Protectable -> ()
            end
          done
        done;
        !ok
      end)

(* Counting consistency. *)
let test_partition_counts =
  qtest "partition counts sum to sources" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let c = Partition.count g sec2 ~attacker:m ~dst in
        c.Partition.sources = n - 2
        && c.Partition.doomed + c.Partition.protectable + c.Partition.immune
           + c.Partition.unreachable
           = c.Partition.sources
      end)

(* Protectable ASes really are protectable in the security 1st model:
   securing everything makes every non-doomed, reachable AS happy. *)
let test_protectable_sec1 =
  qtest "sec1: full deployment rescues all protectable ASes" ~count:150
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let classes = Partition.compute g sec1 ~attacker:m ~dst in
        let full =
          Deployment.of_modes (Array.make n Deployment.Full)
        in
        let out = Engine.compute g sec1 full ~dst ~attacker:(Some m) in
        let ok = ref true in
        for v = 0 to n - 1 do
          if v <> dst && v <> m then
            match classes.(v) with
            | Partition.Protectable | Partition.Immune ->
                if not (Outcome.happy_lb out v) then ok := false
            | Partition.Doomed | Partition.Unreachable -> ()
        done;
        !ok
      end)

(* Partition fractions feed the Figure 3 bounds: upper bound on H(S) =
   1 - doomed fraction; the metric for random S must respect it. *)
let test_partition_bounds_metric =
  qtest "H(S) within partition-derived bounds" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let policy = List.nth [ sec1; sec2; sec3 ] (Rng.int rng 3) in
        let c = Partition.count g policy ~attacker:m ~dst in
        let doomed_frac, _, immune_frac = Partition.fractions c in
        let dep = random_deployment rng n in
        let out = Engine.compute g policy dep ~dst ~attacker:(Some m) in
        let h = Metric.to_bounds (Metric.happy out) in
        h.Metric.ub <= 1. -. doomed_frac +. 1e-9
        && h.Metric.lb >= immune_frac -. 1e-9
      end)

let test_h_metric_per_dst () =
  let g = graph 3 [ c2p 1 0; c2p 2 1 ] in
  let b =
    Metric.h_metric_per_dst g sec3 (Deployment.empty 3) ~attackers:[| 2; 0 |]
      ~dst:0
  in
  (* Only attacker 2 counts (0 = dst skipped).  Source AS 1: legit
     provider route len 1 vs bogus customer route len 2 via its customer
     2: LP prefers customer: unhappy. *)
  Alcotest.(check (float 1e-9)) "lb" 0.0 b.Metric.lb;
  Alcotest.(check (float 1e-9)) "ub" 0.0 b.Metric.ub

(* The decisive partition test: on tiny graphs, enumerate EVERY full/off
   deployment and check that the partition quantifies correctly over all
   of them — immune ASes are happy in every deployment, doomed in none,
   and protectable ASes see both outcomes (in bounds semantics, counting
   an AS as happy when some tiebreak makes it so). *)
let test_partition_exhaustive =
  qtest "partition = quantification over all deployments" ~count:60
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:9 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let policy =
          match Rng.int rng 4 with
          | 0 -> sec1
          | 1 -> sec2
          | 2 -> sec3
          | _ ->
              Policy.make
                ~lp:(Policy.Lp_k (1 + Rng.int rng 2))
                (if Rng.bool rng then Policy.Security_second
                 else Policy.Security_third)
        in
        let classes = Partition.compute g policy ~attacker:m ~dst in
        (* ever_happy / ever_unhappy per source, over all 2^n secure
           sets. *)
        let ever_happy = Array.make n false in
        let ever_unhappy = Array.make n false in
        for mask = 0 to (1 lsl n) - 1 do
          let modes =
            Array.init n (fun v ->
                if mask land (1 lsl v) <> 0 then Deployment.Full
                else Deployment.Off)
          in
          let dep = Deployment.of_modes modes in
          let out = Engine.compute g policy dep ~dst ~attacker:(Some m) in
          for v = 0 to n - 1 do
            if v <> dst && v <> m then begin
              (* Bounds semantics: happy if some tiebreak reaches d,
                 unhappy if some tiebreak reaches m (or no route). *)
              if Outcome.happy_ub out v then ever_happy.(v) <- true;
              if not (Outcome.happy_lb out v) then ever_unhappy.(v) <- true
            end
          done
        done;
        let ok = ref true in
        for v = 0 to n - 1 do
          if v <> dst && v <> m then begin
            let fine =
              match classes.(v) with
              | Partition.Immune -> not ever_unhappy.(v)
              | Partition.Doomed -> not ever_happy.(v)
              | Partition.Protectable -> (
                  (* Under security 2nd, "protectable" is an
                     over-approximation (see Partition's documentation):
                     a class-compatible perceivable route may never be
                     chosen upstream.  Under 1st and 3rd the partition is
                     exact, so a protectable AS must be rescuable. *)
                  match (policy : Policy.t).model with
                  | Policy.Security_second -> true
                  | Policy.Security_first | Policy.Security_third ->
                      ever_happy.(v))
              | Partition.Unreachable ->
                  (not ever_happy.(v)) && ever_unhappy.(v)
            in
            if not fine then begin
              Printf.eprintf
                "seed %d: AS %d classified %s but ever_happy=%b ever_unhappy=%b (%s)\n%!"
                seed v
                (match classes.(v) with
                | Partition.Immune -> "immune"
                | Partition.Doomed -> "doomed"
                | Partition.Protectable -> "protectable"
                | Partition.Unreachable -> "unreachable")
                ever_happy.(v) ever_unhappy.(v) (Policy.name policy);
              ok := false
            end
          end
        done;
        !ok
      end)

(* The batched default path of h_metric (destination-major lane words)
   must be bit-identical — exact float equality — to the scalar
   per-pair fold, for random policies, deployments and pair sets with
   shared destinations. *)
let test_batched_h_metric_identity =
  qtest "batched h_metric = scalar per-pair fold" ~count:150 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let pairs =
        Metric.pairs
          ~attackers:(Rng.sample_without_replacement rng (min 6 n) n)
          ~dsts:(Rng.sample_without_replacement rng (min 5 n) n)
          ()
      in
      Array.length pairs = 0
      ||
      let got = Metric.h_metric g policy dep pairs in
      let lb = ref 0. and ub = ref 0. in
      Array.iter
        (fun p ->
          let b = Metric.pair_bounds g policy dep p in
          lb := !lb +. b.Metric.lb;
          ub := !ub +. b.Metric.ub)
        pairs;
      let total = float_of_int (Array.length pairs) in
      got.Metric.lb = !lb /. total && got.Metric.ub = !ub /. total)

(* batch_plan covers each input position exactly once, groups by the
   position's destination and never exceeds the lane bound. *)
let test_batch_plan =
  qtest "batch_plan partitions the pair positions" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let npairs = 1 + Rng.int rng 300 in
      let pairs =
        Array.init npairs (fun _ ->
            {
              Metric.attacker = Rng.int rng 20;
              dst = 100 + Rng.int rng 5 (* few dsts: forces chunking *);
            })
      in
      let items = Metric.batch_plan pairs in
      let seen = Array.make npairs 0 in
      let ok = ref true in
      Array.iter
        (fun (dst, attackers, pos) ->
          if Array.length pos = 0 || Array.length pos > Batch.max_lanes then
            ok := false;
          if Array.length attackers <> Array.length pos then ok := false;
          Array.iteri
            (fun l j ->
              seen.(j) <- seen.(j) + 1;
              if pairs.(j).Metric.dst <> dst then ok := false;
              if pairs.(j).Metric.attacker <> attackers.(l) then ok := false)
            pos)
        items;
      !ok && Array.for_all (fun c -> c = 1) seen)

(* Per-lane partition counts off one batched solve = per-pair counts,
   security 3rd under both LP variants. *)
let test_sec3_count_batch =
  qtest "sec3 batched partition counts = per-pair counts" ~count:150
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dst = Rng.int rng n in
      let lanes = 1 + Rng.int rng (min 8 (n - 1)) in
      let attackers =
        Array.init lanes (fun _ ->
            let m = Rng.int rng (n - 1) in
            if m >= dst then m + 1 else m)
      in
      let policy =
        if Rng.bool rng then sec3
        else Policy.make ~lp:(Policy.Lp_k (1 + Rng.int rng 3)) Policy.Security_third
      in
      let batch = Partition.sec3_count_batch g policy ~dst ~attackers in
      let ok = ref true in
      Array.iteri
        (fun l m ->
          let want = Partition.count g policy ~attacker:m ~dst in
          if want <> batch.(l) then ok := false)
        attackers;
      !ok)

let () =
  Alcotest.run "metric"
    [
      ( "h metric",
        [
          Alcotest.test_case "bounds arithmetic" `Quick test_bounds_arith;
          Alcotest.test_case "pp_bounds precision boundary" `Quick
            test_pp_bounds;
          Alcotest.test_case "progress reporting" `Quick test_progress;
          Alcotest.test_case "happy counts" `Quick test_happy_counts;
          Alcotest.test_case "pairs" `Quick test_pairs;
          Alcotest.test_case "pairs requires rng" `Quick test_pairs_requires_rng;
          Alcotest.test_case "per-destination metric" `Quick test_h_metric_per_dst;
          test_lb_below_ub;
          test_baseline_model_independent;
          test_batched_h_metric_identity;
          test_batch_plan;
        ] );
      ( "partitions",
        [
          test_partition_soundness;
          test_partition_exhaustive;
          test_partition_counts;
          test_protectable_sec1;
          test_partition_bounds_metric;
          test_sec3_count_batch;
        ] );
    ]
