(* Protocol downgrades, collateral benefits/damages, root causes
   (Section 6 of the paper). *)

open Core
open Test_helpers

let sec1 = Policy.make Policy.Security_first
let sec2 = Policy.make Policy.Security_second
let sec3 = Policy.make Policy.Security_third

(* Figure 2 downgrade quantified. *)
let test_downgrade_fig2 () =
  let g =
    graph 6 [ c2p 1 0; p2p 1 2; p2p 2 0; c2p 3 2; c2p 4 3; c2p 5 0 ]
  in
  let dep = Deployment.make ~n:6 ~full:[| 0; 1; 5 |] () in
  let dg2 = Phenomena.downgrades g sec2 dep ~attacker:4 ~dst:0 in
  (* Under normal conditions ASes 1 and 5 have secure routes. *)
  Alcotest.(check int) "secure normal" 2 dg2.Phenomena.secure_normal;
  (* Under attack, AS 1 downgrades (peer LP beats secure provider); the
     stub 5 keeps its secure route. *)
  Alcotest.(check int) "downgraded (sec2)" 1 dg2.Phenomena.downgraded;
  Alcotest.(check int) "secure after (sec2)" 1 dg2.Phenomena.secure_after;
  let dg1 = Phenomena.downgrades g sec1 dep ~attacker:4 ~dst:0 in
  Alcotest.(check int) "downgraded (sec1)" 0 dg1.Phenomena.downgraded

(* Collateral damage in the security 2nd model (the Figure 14 mechanism):
   a secure provider chooses a longer secure route, pushing its insecure
   customer onto the bogus path.
   ids: d=0, x=1 (insecure middle), u=2 (secure ISP), c1=3, c2=4 (secure
   chain), v=5 (victim customer of u), w=6 (v's other provider),
   m=7 (attacker, customer of w). *)
let damage_graph () =
  graph 8
    [
      c2p 0 1 (* d customer of x *);
      c2p 1 2 (* x customer of u *);
      c2p 0 3 (* d customer of c1 *);
      c2p 3 4 (* c1 customer of c2 *);
      c2p 4 2 (* c2 customer of u *);
      c2p 5 2 (* v customer of u *);
      c2p 5 6 (* v customer of w *);
      c2p 7 6 (* m customer of w *);
    ]

let test_collateral_damage_sec2 () =
  let g = damage_graph () in
  let s = Deployment.make ~n:8 ~full:[| 0; 2; 3; 4 |] () in
  let empty = Deployment.empty 8 in
  (* Baseline: u picks the short insecure customer route (len 2 via x);
     v's provider route via u is len 3, beating the bogus len 3 via w...
     both len 3!  Make sure: v via u = 1 + u.len = 3; v via w = 1 +
     w.len; w picks the bogus customer route (m,d) len 2, so v via w is
     len 3 — a tie.  To get strict baseline happiness u must pick the
     direct customer route d (len 1).  Rebuild: x IS d.  We instead check
     with the deployment-free engine directly. *)
  let base = Engine.compute g sec2 empty ~dst:0 ~attacker:(Some 7) in
  let dep = Engine.compute g sec2 s ~dst:0 ~attacker:(Some 7) in
  (* Baseline: u len 2 insecure; v provider routes: via u len 3 to d,
     via w len 3 to m: tie -> not definitely happy.  With S: u takes the
     secure len 3 route, v's legit option becomes len 4: strictly worse —
     v definitely unhappy. *)
  Alcotest.(check int) "u baseline length" 2 (Outcome.length base 2);
  Alcotest.(check int) "u secure length" 3 (Outcome.length dep 2);
  Alcotest.(check bool) "u secure" true (Outcome.secure dep 2);
  Alcotest.(check bool) "v had a legitimate option" true (Outcome.to_d base 5);
  Alcotest.(check bool) "v loses it: to_d gone" false (Outcome.to_d dep 5);
  Alcotest.(check bool) "v unhappy (collateral damage)" true
    (Outcome.to_m dep 5 && not (Outcome.to_d dep 5));
  (* Theorem 6.1: no such damage under security 3rd. *)
  let base3 = Engine.compute g sec3 empty ~dst:0 ~attacker:(Some 7) in
  let dep3 = Engine.compute g sec3 s ~dst:0 ~attacker:(Some 7) in
  Alcotest.(check bool) "sec3: v keeps its option" true
    (Outcome.to_d base3 5 && Outcome.to_d dep3 5)

(* Collateral benefit in the security 3rd model (Figure 15): a tie at a
   transit AS is broken toward the secure legitimate route, rescuing its
   insecure customer.
   ids: d=0, t=1 (transit with two peer routes), y=2 (peer of t with
   customer route to d), m=3 (peer of t), c=4 (customer of t). *)
let test_collateral_benefit_sec3 () =
  let g =
    graph 5
      [
        c2p 0 2 (* d customer of y *);
        p2p 1 2 (* t peers with y *);
        p2p 1 3 (* t peers with m *);
        c2p 4 1 (* c customer of t *);
      ]
  in
  let empty = Deployment.empty 5 in
  let s = Deployment.make ~n:5 ~full:[| 0; 1; 2 |] () in
  let col =
    Phenomena.collateral g sec3 ~baseline:empty ~deployment:s ~attacker:3
      ~dst:0
  in
  (* Insecure sources: y?  y is secure... insecure sources are m's
     customers... sources not in S: 4 (c) and 3 is the attacker.  c
     benefits: baseline t ties between (y,d) and (m,d) peer routes ->
     pessimistically unhappy; with S the (y,d) route is secure and wins
     the SecP tiebreak. *)
  Alcotest.(check int) "one collateral benefit" 1 col.Phenomena.benefit;
  Alcotest.(check int) "no collateral damage" 0 col.Phenomena.damage

(* Figure 17: collateral damage under security 1st via export policy — a
   secure AS switches to a provider route and may no longer export to its
   peer.  ids: d=0, opt=1 (7474), orange=2 (4805), p=3 (7473, provider of
   opt), m=4, prov2=5 (2647, provider of orange), x=6 joins p to d
   securely. *)
let test_collateral_damage_sec1_export () =
  let g =
    graph 8
      [
        c2p 7 1 (* z (insecure) customer of opt *);
        c2p 0 7 (* d customer of z *);
        p2p 1 2 (* opt peers with orange *);
        c2p 1 3 (* opt customer of p *);
        c2p 2 5 (* orange customer of prov2 *);
        c2p 4 5 (* m customer of prov2 *);
        c2p 6 3 (* x customer of p *);
        c2p 0 6 (* d customer of x *);
      ]
  in
  let empty = Deployment.empty 8 in
  (* Secure: d, opt, p, x — opt's provider route via p -> x -> d is
     fully secure, while its shorter customer route via z is not. *)
  let s = Deployment.make ~n:8 ~full:[| 0; 1; 3; 6 |] () in
  let base = Engine.compute g sec1 empty ~dst:0 ~attacker:(Some 4) in
  (* Baseline: orange hears opt's customer route via z over the peer link
     and prefers it over the bogus provider route via prov2. *)
  Alcotest.(check bool) "orange happy at baseline" true (Outcome.happy_lb base 2);
  let dep = Engine.compute g sec1 s ~dst:0 ~attacker:(Some 4) in
  (* With S, security-1st opt prefers the secure provider route via p;
     Ex then forbids exporting it to the peer orange, which falls back to
     the bogus provider route: collateral damage. *)
  Alcotest.(check bool) "opt picks the secure route" true (Outcome.secure dep 1);
  Alcotest.(check string) "opt's class is provider" "provider"
    (Policy.class_name (Outcome.route_class dep 1));
  Alcotest.(check bool) "orange collaterally damaged" true
    (Outcome.to_m dep 2 && not (Outcome.to_d dep 2))

(* Root-cause accounting identities on random instances. *)
let test_root_cause_identities =
  qtest "root-cause decomposition is internally consistent" ~count:150
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:25 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy = random_policy rng in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let rc = Phenomena.root_cause g policy dep ~attacker:m ~dst in
        (* Secure routes under normal conditions split into downgraded /
           wasted / protecting. *)
        rc.Phenomena.rc_downgraded + rc.Phenomena.rc_wasted
        + rc.Phenomena.rc_protecting
        = rc.Phenomena.rc_secure_normal
        && rc.Phenomena.sources = n - 2
        && rc.Phenomena.rc_happy_dep >= 0
        && rc.Phenomena.rc_benefit <= rc.Phenomena.sources
      end)

(* No collateral damage in the security 3rd model (Theorem 6.1), measured
   through the phenomena API. *)
let test_no_damage_sec3 =
  qtest "Theorem 6.1: zero collateral damage when security is 3rd"
    ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let dep = random_deployment rng n in
        let col =
          Phenomena.collateral g sec3 ~baseline:(Deployment.empty n)
            ~deployment:dep ~attacker:m ~dst
        in
        col.Phenomena.damage = 0
      end)

let test_collateral_requires_subset () =
  let g = graph 2 [ c2p 1 0 ] in
  Alcotest.check_raises "subset required"
    (Invalid_argument "Phenomena.collateral: baseline not a subset of deployment")
    (fun () ->
      ignore
        (Phenomena.collateral g sec3
           ~baseline:(Deployment.make ~n:2 ~full:[| 1 |] ())
           ~deployment:(Deployment.empty 2) ~attacker:1 ~dst:0))

let () =
  Alcotest.run "phenomena"
    [
      ( "hand examples",
        [
          Alcotest.test_case "figure 2 downgrades" `Quick test_downgrade_fig2;
          Alcotest.test_case "collateral damage (sec2)" `Quick
            test_collateral_damage_sec2;
          Alcotest.test_case "collateral benefit (sec3)" `Quick
            test_collateral_benefit_sec3;
          Alcotest.test_case "collateral damage via Ex (sec1)" `Quick
            test_collateral_damage_sec1_export;
          Alcotest.test_case "collateral requires subset" `Quick
            test_collateral_requires_subset;
        ] );
      ( "properties",
        [ test_root_cause_identities; test_no_damage_sec3 ] );
    ]
