(* Flat CSR kernel: bit-identity of the packed-state engine against the
   fresh-buffer path, the pre-change reference engine and the literal
   Appendix-B staged algorithm, plus the hoisted rank table against
   Policy.rank. *)

open Core
open Test_helpers

let sec1 = Policy.make Policy.Security_first
let sec2 = Policy.make Policy.Security_second
let sec3 = Policy.make Policy.Security_third
let standard_models = [ sec1; sec2; sec3 ]

(* The rank table must reproduce Policy.rank bit-for-bit on every
   (class, length, security) cell, for random policies and length
   bounds — the affine-piece derivation is only correct if the encoding
   really is piecewise affine with the single breakpoint the table
   assumes. *)
let test_rank_table_exhaustive =
  qtest "Rank_table.rank = Policy.rank (exhaustive per policy)" ~count:300
    (fun seed ->
      let rng = Rng.create seed in
      let policy = random_policy rng in
      let max_len = 1 + Rng.int rng 60 in
      let tbl = Policy.Rank_table.make policy ~max_len in
      let ok = ref (tbl.Policy.Rank_table.max_rank = Policy.max_rank policy ~max_len) in
      List.iter
        (fun (cls, cls_code) ->
          for len = 1 to max_len do
            List.iter
              (fun secure ->
                let want = Policy.rank policy ~max_len cls ~len ~secure in
                let got =
                  Policy.Rank_table.rank tbl ~cls_code ~len
                    ~sbit:(if secure then 0 else 1)
                in
                if want <> got then begin
                  Printf.eprintf
                    "rank table mismatch: %s max_len=%d cls=%d len=%d \
                     secure=%b: %d vs %d\n\
                     %!"
                    (Policy.name policy) max_len cls_code len secure want got;
                  ok := false
                end)
              [ true; false ]
          done)
        [ (Policy.Customer, 0); (Policy.Peer, 1); (Policy.Provider, 2) ];
      !ok)

(* A random (graph, deployment, pair, policy, tiebreak) instance; the
   attacker is None one time in four. *)
let random_instance rng ~max_n =
  let g = random_graph rng ~max_n in
  let n = Graph.n g in
  let dep = random_deployment rng n in
  let dst = Rng.int rng n in
  let attacker =
    if Rng.int rng 4 = 0 then None
    else
      let m = Rng.int rng n in
      if m = dst then None else Some m
  in
  let tiebreak =
    if Rng.bool rng then Engine.Bounds else Engine.Lowest_next_hop
  in
  let claim = Rng.int rng 3 in
  (g, dep, dst, attacker, tiebreak, claim)

(* The packed CSR engine, the fresh-buffer path of the same engine, and
   the pre-change reference engine agree bit-for-bit on random instances
   under every policy (including Lp_k), both tiebreaks and random
   attacker claims. *)
let test_engine_vs_reference =
  qtest "packed engine = reference engine (random instances)" ~count:400
    (fun seed ->
      let rng = Rng.create seed in
      let g, dep, dst, attacker, tiebreak, claim =
        random_instance rng ~max_n:30
      in
      let policy = random_policy rng in
      let ws = Engine.Workspace.create (Graph.n g) in
      let fresh =
        Engine.compute ~tiebreak ~attacker_claim:claim g policy dep ~dst
          ~attacker
      in
      let packed =
        Engine.compute ~tiebreak ~attacker_claim:claim ~ws g policy dep ~dst
          ~attacker
      in
      let reference =
        Reference.compute ~tiebreak ~attacker_claim:claim g policy dep ~dst
          ~attacker
      in
      check_none "ws vs fresh" (outcome_mismatch fresh packed)
      && check_none "engine vs reference" (outcome_mismatch fresh reference))

(* Against the executable Appendix-B specification: standard LP, all
   three models, Bounds tiebreak (Staged always merges the BPR set). *)
let test_engine_vs_staged =
  qtest "packed engine = staged specification" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:24 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let attacker =
        if Rng.int rng 4 = 0 then None
        else
          let m = Rng.int rng n in
          if m = dst then None else Some m
      in
      List.for_all
        (fun policy ->
          let a = Engine.compute g policy dep ~dst ~attacker in
          let b = Staged.compute g policy dep ~dst ~attacker in
          check_none (Policy.name policy) (outcome_mismatch a b))
        standard_models)

(* One workspace reused across a growing sequence of graph sizes: the
   grow-in-place path must never leak state from a smaller (or larger)
   previous computation. *)
let test_workspace_across_sizes =
  qtest "workspace reuse across growing graph sizes" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let ws = Engine.Workspace.create 0 in
      let sizes = [ 5; 9; 17; 33; 12; 40 ] in
      List.for_all
        (fun max_n ->
          let g = random_graph rng ~max_n in
          let n = Graph.n g in
          let dep = random_deployment rng n in
          let dst = Rng.int rng n in
          let m = Rng.int rng n in
          let attacker = if m = dst then None else Some m in
          let policy = random_policy rng in
          List.for_all
            (fun tiebreak ->
              let reused =
                Engine.compute ~tiebreak ~ws g policy dep ~dst ~attacker
              in
              let fresh = Engine.compute ~tiebreak g policy dep ~dst ~attacker in
              check_none "reuse across sizes" (outcome_mismatch fresh reused))
            [ Engine.Bounds; Engine.Lowest_next_hop ])
        sizes)

(* attacker:None — normal-conditions outcomes agree across all three
   paths too (the reference engine and the staged specification). *)
let test_no_attacker =
  qtest "normal conditions: engine = reference = staged" ~count:200
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:24 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let ws = Engine.Workspace.create n in
      List.for_all
        (fun policy ->
          let a = Engine.compute ~ws g policy dep ~dst ~attacker:None in
          let r = Reference.compute g policy dep ~dst ~attacker:None in
          let s = Staged.compute g policy dep ~dst ~attacker:None in
          check_none "engine vs reference" (outcome_mismatch a r)
          && check_none "engine vs staged" (outcome_mismatch a s))
        standard_models)

(* The CSR view itself: segments match the per-class adjacency arrays on
   random graphs. *)
let test_csr_segments =
  qtest "CSR segments = adjacency arrays" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let n = Graph.n g in
      let csr = Graph.csr g in
      let adj = csr.Graph.Csr.adj and xs = csr.Graph.Csr.xs in
      let ok = ref true in
      let segment lo hi = Array.sub adj lo (hi - lo) in
      for v = 0 to n - 1 do
        let b = 3 * v in
        if segment xs.(b) xs.(b + 1) <> Graph.customers g v then ok := false;
        if segment xs.(b + 1) xs.(b + 2) <> Graph.peers g v then ok := false;
        if segment xs.(b + 2) xs.(b + 3) <> Graph.providers g v then
          ok := false
      done;
      !ok && xs.(0) = 0)

let () =
  Alcotest.run "kernel"
    [
      ( "rank table",
        [ test_rank_table_exhaustive ] );
      ( "bit identity",
        [
          test_engine_vs_reference;
          test_engine_vs_staged;
          test_workspace_across_sizes;
          test_no_attacker;
        ] );
      ( "csr",
        [ test_csr_segments ] );
    ]
