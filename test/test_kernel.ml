(* Flat CSR kernel: bit-identity of the packed-state engine against the
   fresh-buffer path, the pre-change reference engine and the literal
   Appendix-B staged algorithm, plus the hoisted rank table against
   Policy.rank. *)

open Core
open Test_helpers

let sec1 = Policy.make Policy.Security_first
let sec2 = Policy.make Policy.Security_second
let sec3 = Policy.make Policy.Security_third
let standard_models = [ sec1; sec2; sec3 ]

(* The rank table must reproduce Policy.rank bit-for-bit on every
   (class, length, security) cell, for random policies and length
   bounds — the affine-piece derivation is only correct if the encoding
   really is piecewise affine with the single breakpoint the table
   assumes. *)
let test_rank_table_exhaustive =
  qtest "Rank_table.rank = Policy.rank (exhaustive per policy)" ~count:300
    (fun seed ->
      let rng = Rng.create seed in
      let policy = random_policy rng in
      let max_len = 1 + Rng.int rng 60 in
      let tbl = Policy.Rank_table.make policy ~max_len in
      let ok = ref (tbl.Policy.Rank_table.max_rank = Policy.max_rank policy ~max_len) in
      List.iter
        (fun (cls, cls_code) ->
          for len = 1 to max_len do
            List.iter
              (fun secure ->
                let want = Policy.rank policy ~max_len cls ~len ~secure in
                let got =
                  Policy.Rank_table.rank tbl ~cls_code ~len
                    ~sbit:(if secure then 0 else 1)
                in
                if want <> got then begin
                  Printf.eprintf
                    "rank table mismatch: %s max_len=%d cls=%d len=%d \
                     secure=%b: %d vs %d\n\
                     %!"
                    (Policy.name policy) max_len cls_code len secure want got;
                  ok := false
                end)
              [ true; false ]
          done)
        [ (Policy.Customer, 0); (Policy.Peer, 1); (Policy.Provider, 2) ];
      !ok)

(* A random (graph, deployment, pair, policy, tiebreak) instance; the
   attacker is None one time in four. *)
let random_instance rng ~max_n =
  let g = random_graph rng ~max_n in
  let n = Graph.n g in
  let dep = random_deployment rng n in
  let dst = Rng.int rng n in
  let attacker =
    if Rng.int rng 4 = 0 then None
    else
      let m = Rng.int rng n in
      if m = dst then None else Some m
  in
  let tiebreak =
    if Rng.bool rng then Engine.Bounds else Engine.Lowest_next_hop
  in
  let claim = Rng.int rng 3 in
  (g, dep, dst, attacker, tiebreak, claim)

(* The packed CSR engine, the fresh-buffer path of the same engine, and
   the pre-change reference engine agree bit-for-bit on random instances
   under every policy (including Lp_k), both tiebreaks and random
   attacker claims. *)
let test_engine_vs_reference =
  qtest "packed engine = reference engine (random instances)" ~count:400
    (fun seed ->
      let rng = Rng.create seed in
      let g, dep, dst, attacker, tiebreak, claim =
        random_instance rng ~max_n:30
      in
      let policy = random_policy rng in
      let ws = Engine.Workspace.create (Graph.n g) in
      let fresh =
        Engine.compute ~tiebreak ~attacker_claim:claim g policy dep ~dst
          ~attacker
      in
      let packed =
        Engine.compute ~tiebreak ~attacker_claim:claim ~ws g policy dep ~dst
          ~attacker
      in
      let reference =
        Reference.compute ~tiebreak ~attacker_claim:claim g policy dep ~dst
          ~attacker
      in
      check_none "ws vs fresh" (outcome_mismatch fresh packed)
      && check_none "engine vs reference" (outcome_mismatch fresh reference))

(* Against the executable Appendix-B specification: standard LP, all
   three models, Bounds tiebreak (Staged always merges the BPR set). *)
let test_engine_vs_staged =
  qtest "packed engine = staged specification" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:24 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let attacker =
        if Rng.int rng 4 = 0 then None
        else
          let m = Rng.int rng n in
          if m = dst then None else Some m
      in
      List.for_all
        (fun policy ->
          let a = Engine.compute g policy dep ~dst ~attacker in
          let b = Staged.compute g policy dep ~dst ~attacker in
          check_none (Policy.name policy) (outcome_mismatch a b))
        standard_models)

(* One workspace reused across a growing sequence of graph sizes: the
   grow-in-place path must never leak state from a smaller (or larger)
   previous computation. *)
let test_workspace_across_sizes =
  qtest "workspace reuse across growing graph sizes" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let ws = Engine.Workspace.create 0 in
      let sizes = [ 5; 9; 17; 33; 12; 40 ] in
      List.for_all
        (fun max_n ->
          let g = random_graph rng ~max_n in
          let n = Graph.n g in
          let dep = random_deployment rng n in
          let dst = Rng.int rng n in
          let m = Rng.int rng n in
          let attacker = if m = dst then None else Some m in
          let policy = random_policy rng in
          List.for_all
            (fun tiebreak ->
              let reused =
                Engine.compute ~tiebreak ~ws g policy dep ~dst ~attacker
              in
              let fresh = Engine.compute ~tiebreak g policy dep ~dst ~attacker in
              check_none "reuse across sizes" (outcome_mismatch fresh reused))
            [ Engine.Bounds; Engine.Lowest_next_hop ])
        sizes)

(* attacker:None — normal-conditions outcomes agree across all three
   paths too (the reference engine and the staged specification). *)
let test_no_attacker =
  qtest "normal conditions: engine = reference = staged" ~count:200
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:24 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let ws = Engine.Workspace.create n in
      List.for_all
        (fun policy ->
          let a = Engine.compute ~ws g policy dep ~dst ~attacker:None in
          let r = Reference.compute g policy dep ~dst ~attacker:None in
          let s = Staged.compute g policy dep ~dst ~attacker:None in
          check_none "engine vs reference" (outcome_mismatch a r)
          && check_none "engine vs staged" (outcome_mismatch a s))
        standard_models)

(* Destination-major batched kernel: decoding each lane of one batched
   solve must be bit-identical to a scalar Engine.compute against that
   lane's attacker — random policies (Lp_k included), both tiebreaks,
   random claims, duplicate attackers allowed (two lanes may share an
   attacker and must still decode independently). *)
let random_attackers rng ~n ~dst =
  let lanes = 1 + Rng.int rng (min Batch.max_lanes (2 * (n - 1))) in
  Array.init lanes (fun _ ->
      let m = Rng.int rng (n - 1) in
      if m >= dst then m + 1 else m)

let test_batch_vs_engine =
  qtest "batched kernel = scalar engine per lane" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let attackers = random_attackers rng ~n ~dst in
      let policy = random_policy rng in
      let tiebreak =
        if Rng.bool rng then Engine.Bounds else Engine.Lowest_next_hop
      in
      let claim = Rng.int rng 3 in
      let b =
        Batch.compute ~tiebreak ~attacker_claim:claim g policy dep ~dst
          ~attackers
      in
      let ok = ref true in
      Array.iteri
        (fun lane m ->
          let want =
            Engine.compute ~tiebreak ~attacker_claim:claim g policy dep ~dst
              ~attacker:(Some m)
          in
          let got = Batch.decode b ~lane in
          if
            not
              (check_none
                 (Printf.sprintf "lane %d (attacker %d)" lane m)
                 (outcome_mismatch want got))
          then ok := false)
        attackers;
      !ok)

(* All three standard models with the Appendix-B staged specification as
   the oracle: the batch path must not drift from the paper's semantics
   either (Bounds tiebreak, claim 1, like Staged). *)
let test_batch_vs_staged =
  qtest "batched kernel = staged specification per lane" ~count:150
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:20 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let attackers = random_attackers rng ~n ~dst in
      List.for_all
        (fun policy ->
          let b = Batch.compute g policy dep ~dst ~attackers in
          let ok = ref true in
          Array.iteri
            (fun lane m ->
              let want = Staged.compute g policy dep ~dst ~attacker:(Some m) in
              let got = Batch.decode b ~lane in
              if
                not
                  (check_none
                     (Printf.sprintf "%s lane %d" (Policy.name policy) lane)
                     (outcome_mismatch want got))
              then ok := false)
            attackers;
          !ok)
        standard_models)

(* One batch workspace reused across growing and shrinking graph sizes,
   with a reused decode outcome: the epoch-stamped slabs must never leak
   groups from a previous solve, and a result must go stale the moment
   its workspace is reused. *)
let test_batch_workspace_reuse =
  qtest "batch workspace reuse across sizes" ~count:60 (fun seed ->
      let rng = Rng.create seed in
      let ws = Batch.Workspace.create 0 in
      let into = Outcome.create ~n:1 ~dst:0 ~attacker:None in
      let stale = ref None in
      let ok =
        List.for_all
          (fun max_n ->
            let g = random_graph rng ~max_n in
            let n = Graph.n g in
            let dep = random_deployment rng n in
            let dst = Rng.int rng n in
            let attackers = random_attackers rng ~n ~dst in
            let policy = random_policy rng in
            let b = Batch.compute ~ws g policy dep ~dst ~attackers in
            stale := Some b;
            let lane = Rng.int rng (Array.length attackers) in
            let want =
              Engine.compute g policy dep ~dst
                ~attacker:(Some attackers.(lane))
            in
            let got = Batch.decode ~into b ~lane in
            check_none "reused ws + into" (outcome_mismatch want got))
          [ 5; 9; 17; 33; 12; 40 ]
      in
      ok
      &&
      match !stale with
      | None -> false
      | Some b -> (
          (* The last result is live; recompute on the same workspace and
             the accessors must refuse it. *)
          let g = random_graph rng ~max_n:8 in
          let n = Graph.n g in
          let dep = random_deployment rng n in
          let (_ : Batch.t) =
            Batch.compute ~ws g (random_policy rng) dep ~dst:0
              ~attackers:[| 1 |]
          in
          try
            Batch.iter_fixed b (fun ~v:_ ~mask:_ ~word:_ ~parent:_ -> ());
            false
          with Invalid_argument _ -> true))

let test_batch_validation () =
  let rng = Rng.create 7 in
  let g = random_graph rng ~max_n:10 in
  let dep = Deployment.empty (Graph.n g) in
  Alcotest.check_raises "attacker = dst"
    (Invalid_argument "Batch.compute: attacker = dst") (fun () ->
      ignore (Batch.compute g sec3 dep ~dst:0 ~attackers:[| 1; 0 |]));
  Alcotest.check_raises "no lanes"
    (Invalid_argument "Batch.compute: lane count 0 outside 1..63") (fun () ->
      ignore (Batch.compute g sec3 dep ~dst:0 ~attackers:[||]))

(* The CSR view itself: segments match the per-class adjacency arrays on
   random graphs. *)
let test_csr_segments =
  qtest "CSR segments = adjacency arrays" ~count:200 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let n = Graph.n g in
      let csr = Graph.csr g in
      let adj = csr.Graph.Csr.adj and xs = csr.Graph.Csr.xs in
      let ok = ref true in
      let segment lo hi = Array.init (hi - lo) (fun i -> adj.{lo + i}) in
      for v = 0 to n - 1 do
        let b = 3 * v in
        if segment xs.{b} xs.{b + 1} <> Graph.customers g v then ok := false;
        if segment xs.{b + 1} xs.{b + 2} <> Graph.peers g v then ok := false;
        if segment xs.{b + 2} xs.{b + 3} <> Graph.providers g v then
          ok := false
      done;
      !ok && xs.{0} = 0)

let () =
  Alcotest.run "kernel"
    [
      ( "rank table",
        [ test_rank_table_exhaustive ] );
      ( "bit identity",
        [
          test_engine_vs_reference;
          test_engine_vs_staged;
          test_workspace_across_sizes;
          test_no_attacker;
        ] );
      ( "batched kernel",
        [
          test_batch_vs_engine;
          test_batch_vs_staged;
          test_batch_workspace_reuse;
          Alcotest.test_case "validation" `Quick test_batch_validation;
        ] );
      ( "csr",
        [ test_csr_segments ] );
    ]
