(* Max-k-Security: greedy vs exhaustive, CELF vs naive greedy, argument
   validation, and the Theorem 5.1 / Appendix I set-cover reduction. *)

open Core
open Test_helpers

let sec3 = Policy.make Policy.Security_third

let test_greedy_le_exhaustive =
  qtest "greedy never beats exhaustive" ~count:40 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:12 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let candidates =
          Array.of_list
            (List.filter (fun v -> v <> m) (List.init n (fun i -> i)))
        in
        let k = 1 + Rng.int rng 2 in
        let greedy = Optimize.greedy g sec3 ~attacker:m ~dst ~k ~candidates in
        let best = Optimize.exhaustive g sec3 ~attacker:m ~dst ~k ~candidates in
        greedy.Optimize.happy <= best.Optimize.happy
      end)

(* At k = 1 greedy scans every candidate, so it IS exhaustive. *)
let test_greedy_eq_exhaustive_k1 =
  qtest "greedy equals exhaustive at k = 1" ~count:40 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:12 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let candidates =
          Array.of_list
            (List.filter (fun v -> v <> m) (List.init n (fun i -> i)))
        in
        let greedy =
          Optimize.greedy g sec3 ~attacker:m ~dst ~k:1 ~candidates
        in
        let best =
          Optimize.exhaustive g sec3 ~attacker:m ~dst ~k:1 ~candidates
        in
        greedy.Optimize.happy = best.Optimize.happy
        && greedy.Optimize.achieved = 1
        && best.Optimize.achieved = 1
      end)

let test_securing_helps =
  qtest "exhaustive never hurts (sec3 monotone)" ~count:40 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:12 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let base =
          Optimize.happy_with g sec3 (Deployment.empty n) ~attacker:m ~dst
        in
        let candidates = [| dst |] in
        let best = Optimize.exhaustive g sec3 ~attacker:m ~dst ~k:1 ~candidates in
        best.Optimize.happy >= base
      end)

(* The upper-bound objective can only see more happy sources than the
   lower-bound one (ties resolve toward the attacker in the latter). *)
let test_objective_order =
  qtest "happy_with `Ub >= `Lb" ~count:40 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:12 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else
        let dep = random_deployment rng n in
        Optimize.happy_with ~objective:`Ub g sec3 dep ~attacker:m ~dst
        >= Optimize.happy_with ~objective:`Lb g sec3 dep ~attacker:m ~dst)

(* ---- argument validation and early stopping ---------------------- *)

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_validation () =
  let g = graph 4 [ c2p 1 0; c2p 2 0; c2p 3 1 ] in
  let candidates = [| 1; 2 |] in
  Alcotest.(check bool) "iter_subsets k < 0" true
    (raises_invalid (fun () -> Optimize.iter_subsets candidates (-1) ignore));
  Alcotest.(check bool) "iter_subsets k > n" true
    (raises_invalid (fun () -> Optimize.iter_subsets candidates 3 ignore));
  Alcotest.(check bool) "exhaustive k > n" true
    (raises_invalid (fun () ->
         Optimize.exhaustive g sec3 ~attacker:3 ~dst:0 ~k:3 ~candidates));
  Alcotest.(check bool) "exhaustive k < 0" true
    (raises_invalid (fun () ->
         Optimize.exhaustive g sec3 ~attacker:3 ~dst:0 ~k:(-1) ~candidates));
  Alcotest.(check bool) "greedy k < 0" true
    (raises_invalid (fun () ->
         Optimize.greedy g sec3 ~attacker:3 ~dst:0 ~k:(-2) ~candidates));
  let pairs = [| { Metric.attacker = 3; dst = 0 } |] in
  Alcotest.(check bool) "Max_k.greedy k < 0" true
    (raises_invalid (fun () ->
         Optimize.Max_k.greedy g sec3 ~pairs ~k:(-1) ~candidates));
  Alcotest.(check bool) "Max_k.celf k < 0" true
    (raises_invalid (fun () ->
         Optimize.Max_k.celf g sec3 ~pairs ~k:(-1) ~candidates));
  Alcotest.(check bool) "Max_k.greedy empty pairs" true
    (raises_invalid (fun () ->
         Optimize.Max_k.greedy g sec3 ~pairs:[||] ~k:1 ~candidates));
  Alcotest.(check bool) "Max_k.celf bad base size" true
    (raises_invalid (fun () ->
         Optimize.Max_k.celf ~base:(Deployment.empty 3) g sec3 ~pairs ~k:1
           ~candidates))

let test_early_stop () =
  let g = graph 4 [ c2p 1 0; c2p 2 0; c2p 3 1 ] in
  let candidates = [| 1; 2 |] in
  let r = Optimize.greedy g sec3 ~attacker:3 ~dst:0 ~k:5 ~candidates in
  Alcotest.(check int) "greedy requested" 5 r.Optimize.requested;
  Alcotest.(check int) "greedy achieved" 2 r.Optimize.achieved;
  Alcotest.(check int) "greedy chosen size" 2 (Array.length r.Optimize.chosen);
  let pairs = [| { Metric.attacker = 3; dst = 0 } |] in
  let rn = Optimize.Max_k.greedy g sec3 ~pairs ~k:5 ~candidates in
  Alcotest.(check int) "Max_k.greedy achieved" 2 rn.Optimize.Max_k.achieved;
  Alcotest.(check int) "Max_k.greedy steps" 2
    (Array.length rn.Optimize.Max_k.steps);
  let rc = Optimize.Max_k.celf g sec3 ~pairs ~k:5 ~candidates in
  Alcotest.(check int) "Max_k.celf achieved" 2 rc.Optimize.Max_k.achieved

(* ---- CELF vs naive greedy ---------------------------------------- *)

(* The tentpole identity: on random instances the CELF lazy greedy must
   emit the bit-identical pick sequence and bounds as the naive
   full-re-eval greedy (Check.Optimize is the same gate at check
   scale). *)
let test_celf_eq_greedy =
  qtest "CELF equals naive greedy bit-for-bit" ~count:40 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:12 in
      let n = Graph.n g in
      if n < 6 then true
      else begin
        let d0 = Rng.int rng n in
        let d1 = (d0 + 1 + Rng.int rng (n - 1)) mod n in
        let dsts = [| d0; d1 |] in
        let rest =
          List.filter (fun v -> v <> d0 && v <> d1) (List.init n Fun.id)
        in
        match rest with
        | a0 :: a1 :: cands when cands <> [] ->
            let attackers = [| a0; a1 |] in
            let pairs = Metric.pairs ~attackers ~dsts () in
            (* Destinations sign so that transit candidates can matter. *)
            let base = Deployment.make ~n ~full:[||] ~simplex:dsts () in
            let candidates = Array.of_list cands in
            let k = 1 + Rng.int rng 3 in
            let policy = random_policy rng in
            let objective = if seed mod 2 = 0 then `Lb else `Ub in
            let naive =
              Optimize.Max_k.greedy ~objective ~base g policy ~pairs ~k
                ~candidates
            in
            let celf =
              Optimize.Max_k.celf ~objective ~base g policy ~pairs ~k
                ~candidates
            in
            let diags =
              Check.Optimize.compare_results ~label:"qcheck" naive celf
            in
            List.iter
              (fun d ->
                Printf.eprintf "%s\n%!" (Check.Diagnostic.to_string d))
              diags;
            diags = []
        | _ -> true
      end)

(* ---- the set-cover reduction ------------------------------------- *)

(* The reduction on a hand instance: universe {0,1,2}, sets {0,1}, {1,2},
   {2}.  A 2-cover exists ({0,1},{2}); no 1-cover does. *)
let test_reduction_hand () =
  let inst =
    { Optimize.Set_cover.universe = 3; sets = [| [ 0; 1 ]; [ 1; 2 ]; [ 2 ] |] }
  in
  let built = Optimize.Set_cover.build inst in
  Alcotest.(check bool) "graph acyclic" true
    (Graph.acyclic_hierarchy built.Optimize.Set_cover.graph);
  Alcotest.(check bool) "2-cover exists" true
    (Optimize.Set_cover.cover_exists inst ~gamma:2);
  Alcotest.(check bool) "no 1-cover" false
    (Optimize.Set_cover.cover_exists inst ~gamma:1);
  Alcotest.(check bool) "2-security achievable" true
    (Optimize.Set_cover.security_achievable built ~gamma:2);
  Alcotest.(check bool) "1-security not achievable" false
    (Optimize.Set_cover.security_achievable built ~gamma:1);
  (* Budgets are clamped into [0, number of sets]: over-budget decides
     like gamma = w, negative like gamma = 0. *)
  Alcotest.(check bool) "over-budget clamps to all sets" true
    (Optimize.Set_cover.cover_exists inst ~gamma:99);
  Alcotest.(check bool) "negative budget clamps to none" false
    (Optimize.Set_cover.cover_exists inst ~gamma:(-3));
  Alcotest.(check bool) "over-budget security achievable" true
    (Optimize.Set_cover.security_achievable built ~gamma:99);
  Alcotest.(check bool) "negative budget security" false
    (Optimize.Set_cover.security_achievable built ~gamma:(-3))

(* Theorem I.1's equivalence on random instances: a gamma-cover exists iff
   securing d, the elements, and gamma set-ASes makes everyone happy. *)
let test_reduction_equivalence =
  qtest "set-cover <=> max-k-security (Theorem 5.1)" ~count:60 (fun seed ->
      let rng = Rng.create seed in
      let universe = 2 + Rng.int rng 3 in
      let w = 2 + Rng.int rng 3 in
      let sets =
        Array.init w (fun _ ->
            List.filter (fun _ -> Rng.bool rng) (List.init universe Fun.id))
      in
      (* Ensure every element appears somewhere, else no cover can exist
         and the equivalence is trivially about unreachability. *)
      let sets =
        Array.mapi
          (fun j s -> if j < universe then List.sort_uniq compare (j :: s) else s)
          sets
      in
      let inst = { Optimize.Set_cover.universe; sets } in
      let built = Optimize.Set_cover.build inst in
      List.for_all
        (fun gamma ->
          Optimize.Set_cover.cover_exists inst ~gamma
          = Optimize.Set_cover.security_achievable built ~gamma)
        [ 1; 2; universe ])

(* In the reduction, an element AS is happy iff some secured set-AS covers
   it. *)
let test_reduction_element_semantics () =
  let inst =
    { Optimize.Set_cover.universe = 2; sets = [| [ 0 ]; [ 1 ] |] }
  in
  let built = Optimize.Set_cover.build inst in
  let g = built.Optimize.Set_cover.graph in
  let n = Graph.n g in
  (* Secure d, all elements, and set-AS 0 only. *)
  let full =
    Array.concat
      [
        [| built.Optimize.Set_cover.dst |];
        built.Optimize.Set_cover.element_as;
        [| built.Optimize.Set_cover.set_as.(0) |];
      ]
  in
  let dep = Deployment.make ~n ~full () in
  let out =
    Engine.compute g sec3 dep ~dst:built.Optimize.Set_cover.dst
      ~attacker:(Some built.Optimize.Set_cover.attacker)
  in
  Alcotest.(check bool) "covered element happy" true
    (Outcome.happy_lb out built.Optimize.Set_cover.element_as.(0));
  Alcotest.(check bool) "uncovered element unhappy" false
    (Outcome.happy_lb out built.Optimize.Set_cover.element_as.(1));
  (* Set ASes are immune regardless. *)
  Array.iter
    (fun s -> Alcotest.(check bool) "set AS happy" true (Outcome.happy_lb out s))
    built.Optimize.Set_cover.set_as

(* CELF greedily solves the gadget's coverage instance: the nested set is
   never picked, and both solvers agree (the check-pass gate in
   miniature). *)
let test_gadget_gate () =
  let items, diags = Check.Optimize.gadget () in
  Alcotest.(check bool) "gadget items counted" true (items > 0);
  List.iter
    (fun d -> Printf.eprintf "%s\n%!" (Check.Diagnostic.to_string d))
    diags;
  Alcotest.(check int) "gadget clean" 0 (List.length diags)

let () =
  Alcotest.run "optimize"
    [
      ( "heuristics",
        [
          test_greedy_le_exhaustive;
          test_greedy_eq_exhaustive_k1;
          test_securing_helps;
          test_objective_order;
        ] );
      ( "validation",
        [
          Alcotest.test_case "invalid arguments" `Quick test_validation;
          Alcotest.test_case "early stop" `Quick test_early_stop;
        ] );
      ( "celf",
        [
          test_celf_eq_greedy;
          Alcotest.test_case "gadget gate" `Quick test_gadget_gate;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "hand instance" `Quick test_reduction_hand;
          test_reduction_equivalence;
          Alcotest.test_case "element semantics" `Quick
            test_reduction_element_semantics;
        ] );
    ]
