(* Max-k-Security: greedy vs exhaustive, and the Theorem 5.1 / Appendix I
   set-cover reduction. *)

open Core
open Test_helpers

let sec3 = Policy.make Policy.Security_third

let test_greedy_le_exhaustive =
  qtest "greedy never beats exhaustive" ~count:40 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:12 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let candidates =
          Array.of_list
            (List.filter (fun v -> v <> m) (List.init n (fun i -> i)))
        in
        let k = 1 + Rng.int rng 2 in
        let _, greedy_count =
          Optimize.greedy g sec3 ~attacker:m ~dst ~k ~candidates
        in
        let _, best_count =
          Optimize.exhaustive g sec3 ~attacker:m ~dst ~k ~candidates
        in
        greedy_count <= best_count
      end)

let test_securing_helps =
  qtest "exhaustive never hurts (sec3 monotone)" ~count:40 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:12 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if m = dst then true
      else begin
        let base =
          Optimize.happy_with g sec3 (Deployment.empty n) ~attacker:m ~dst
        in
        let candidates = [| dst |] in
        let _, best =
          Optimize.exhaustive g sec3 ~attacker:m ~dst ~k:1 ~candidates
        in
        best >= base
      end)

(* The reduction on a hand instance: universe {0,1,2}, sets {0,1}, {1,2},
   {2}.  A 2-cover exists ({0,1},{2}); no 1-cover does. *)
let test_reduction_hand () =
  let inst =
    { Optimize.Set_cover.universe = 3; sets = [| [ 0; 1 ]; [ 1; 2 ]; [ 2 ] |] }
  in
  let built = Optimize.Set_cover.build inst in
  Alcotest.(check bool) "graph acyclic" true
    (Graph.acyclic_hierarchy built.Optimize.Set_cover.graph);
  Alcotest.(check bool) "2-cover exists" true
    (Optimize.Set_cover.cover_exists inst ~gamma:2);
  Alcotest.(check bool) "no 1-cover" false
    (Optimize.Set_cover.cover_exists inst ~gamma:1);
  Alcotest.(check bool) "2-security achievable" true
    (Optimize.Set_cover.security_achievable built ~gamma:2);
  Alcotest.(check bool) "1-security not achievable" false
    (Optimize.Set_cover.security_achievable built ~gamma:1)

(* Theorem I.1's equivalence on random instances: a gamma-cover exists iff
   securing d, the elements, and gamma set-ASes makes everyone happy. *)
let test_reduction_equivalence =
  qtest "set-cover <=> max-k-security (Theorem 5.1)" ~count:60 (fun seed ->
      let rng = Rng.create seed in
      let universe = 2 + Rng.int rng 3 in
      let w = 2 + Rng.int rng 3 in
      let sets =
        Array.init w (fun _ ->
            List.filter (fun _ -> Rng.bool rng) (List.init universe Fun.id))
      in
      (* Ensure every element appears somewhere, else no cover can exist
         and the equivalence is trivially about unreachability. *)
      let sets =
        Array.mapi
          (fun j s -> if j < universe then List.sort_uniq compare (j :: s) else s)
          sets
      in
      let inst = { Optimize.Set_cover.universe; sets } in
      let built = Optimize.Set_cover.build inst in
      List.for_all
        (fun gamma ->
          Optimize.Set_cover.cover_exists inst ~gamma
          = Optimize.Set_cover.security_achievable built ~gamma)
        [ 1; 2; universe ])

(* In the reduction, an element AS is happy iff some secured set-AS covers
   it. *)
let test_reduction_element_semantics () =
  let inst =
    { Optimize.Set_cover.universe = 2; sets = [| [ 0 ]; [ 1 ] |] }
  in
  let built = Optimize.Set_cover.build inst in
  let g = built.Optimize.Set_cover.graph in
  let n = Graph.n g in
  (* Secure d, all elements, and set-AS 0 only. *)
  let full =
    Array.concat
      [
        [| built.Optimize.Set_cover.dst |];
        built.Optimize.Set_cover.element_as;
        [| built.Optimize.Set_cover.set_as.(0) |];
      ]
  in
  let dep = Deployment.make ~n ~full () in
  let out =
    Engine.compute g sec3 dep ~dst:built.Optimize.Set_cover.dst
      ~attacker:(Some built.Optimize.Set_cover.attacker)
  in
  Alcotest.(check bool) "covered element happy" true
    (Outcome.happy_lb out built.Optimize.Set_cover.element_as.(0));
  Alcotest.(check bool) "uncovered element unhappy" false
    (Outcome.happy_lb out built.Optimize.Set_cover.element_as.(1));
  (* Set ASes are immune regardless. *)
  Array.iter
    (fun s -> Alcotest.(check bool) "set AS happy" true (Outcome.happy_lb out s))
    built.Optimize.Set_cover.set_as

let () =
  Alcotest.run "optimize"
    [
      ( "heuristics",
        [ test_greedy_le_exhaustive; test_securing_helps ] );
      ( "reduction",
        [
          Alcotest.test_case "hand instance" `Quick test_reduction_hand;
          test_reduction_equivalence;
          Alcotest.test_case "element semantics" `Quick
            test_reduction_element_semantics;
        ] );
    ]
