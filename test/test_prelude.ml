(* Prelude data structures: bucket queue, bitset, stats, table. *)

open Core

let test_bucket_queue_order () =
  let q = Bucket_queue.create ~max_rank:100 in
  List.iter
    (fun (r, v) -> Bucket_queue.push q ~rank:r v)
    [ (5, 50); (1, 10); (7, 70); (1, 11); (3, 30) ];
  let popped = ref [] in
  let rec drain () =
    match Bucket_queue.pop q with
    | None -> ()
    | Some (r, v) ->
        popped := (r, v) :: !popped;
        drain ()
  in
  drain ();
  let ranks = List.rev_map fst !popped in
  Alcotest.(check (list int)) "ranks ascending" [ 1; 1; 3; 5; 7 ] ranks;
  Alcotest.(check bool) "empty after drain" true (Bucket_queue.is_empty q)

let test_bucket_queue_monotone () =
  let q = Bucket_queue.create ~max_rank:10 in
  Bucket_queue.push q ~rank:5 1;
  let (_ : (int * int) option) = Bucket_queue.pop q in
  Alcotest.check_raises "pushing below cursor"
    (Invalid_argument "Bucket_queue.push: rank 3 below cursor 5") (fun () ->
      Bucket_queue.push q ~rank:3 2)

let test_bucket_queue_bounds () =
  let q = Bucket_queue.create ~max_rank:4 in
  Alcotest.check_raises "rank too large"
    (Invalid_argument "Bucket_queue.push: rank 4 >= max_rank 4") (fun () ->
      Bucket_queue.push q ~rank:4 0)

let test_bucket_queue_clear () =
  let q = Bucket_queue.create ~max_rank:10 in
  Bucket_queue.push q ~rank:9 1;
  let (_ : (int * int) option) = Bucket_queue.pop q in
  Bucket_queue.clear q;
  (* After clear the cursor resets; low ranks are accepted again. *)
  Bucket_queue.push q ~rank:0 7;
  Alcotest.(check (option (pair int int))) "pops the new item" (Some (0, 7))
    (Bucket_queue.pop q)

let test_bucket_queue_vs_sort =
  Test_helpers.qtest "bucket queue pops in sorted order" ~count:200
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 100 in
      let items = Array.init n (fun i -> (Rng.int rng 50, i)) in
      let q = Bucket_queue.create ~max_rank:50 in
      Array.iter (fun (r, v) -> Bucket_queue.push q ~rank:r v) items;
      let out = ref [] in
      let rec drain () =
        match Bucket_queue.pop q with
        | None -> ()
        | Some rv ->
            out := rv :: !out;
            drain ()
      in
      drain ();
      let got = List.rev_map fst !out in
      let expected = Array.to_list (Array.map fst items) in
      got = List.sort compare expected)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 64; 99 ] (Bitset.to_list s);
  Bitset.clear s;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Bitset: index out of bounds") (fun () -> Bitset.add s 8)

let test_bitset_vs_reference =
  Test_helpers.qtest "bitset agrees with list-set reference" ~count:200
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 200 in
      let s = Bitset.create n in
      let reference = Hashtbl.create 16 in
      for _ = 1 to 300 do
        let v = Rng.int rng n in
        if Rng.bool rng then begin
          Bitset.add s v;
          Hashtbl.replace reference v ()
        end
        else begin
          Bitset.remove s v;
          Hashtbl.remove reference v
        end
      done;
      Bitset.cardinal s = Hashtbl.length reference
      && List.for_all (fun v -> Hashtbl.mem reference v) (Bitset.to_list s))

(* Word-level API against a naive bool-array model: random add/remove
   churn plus in-place union/diff against a second set, then every
   accessor cross-checked — [get_word]/[fold_words] bit-by-bit against
   the model, [iter_set] for exact member order, cardinal for the
   popcount bookkeeping of the in-place operations. *)
let test_bitset_words_vs_model =
  Test_helpers.qtest "bitset word API agrees with bool-array model" ~count:300
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 300 in
      let s = Bitset.create n and s2 = Bitset.create n in
      let m = Array.make n false and m2 = Array.make n false in
      for _ = 1 to 200 do
        let v = Rng.int rng n in
        match Rng.int rng 4 with
        | 0 ->
            Bitset.add s v;
            m.(v) <- true
        | 1 ->
            Bitset.remove s v;
            m.(v) <- false
        | 2 ->
            Bitset.add s2 v;
            m2.(v) <- true
        | _ ->
            Bitset.remove s2 v;
            m2.(v) <- false
      done;
      (match Rng.int rng 3 with
      | 0 ->
          Bitset.union_into ~into:s s2;
          Array.iteri (fun i b -> if b then m.(i) <- true) m2
      | 1 ->
          Bitset.diff_into ~into:s s2;
          Array.iteri (fun i b -> if b then m.(i) <- false) m2
      | _ -> ());
      let model_card = Array.fold_left (fun a b -> if b then a + 1 else a) 0 m in
      let words_ok =
        Bitset.words s = (n + Bitset.word_bits - 1) / Bitset.word_bits
      in
      let get_ok = ref true in
      for j = 0 to Bitset.words s - 1 do
        let w = Bitset.get_word s j in
        for b = 0 to Bitset.word_bits - 1 do
          let i = (j * Bitset.word_bits) + b in
          let want = i < n && m.(i) in
          if w land (1 lsl b) <> 0 <> want then get_ok := false
        done
      done;
      let fold_card =
        Bitset.fold_words (fun _ w acc -> acc + Bitset.popcount_word w) s 0
      in
      let members = ref [] in
      Bitset.iter_set (fun i -> members := i :: !members) s;
      let model_members = ref [] in
      for i = n - 1 downto 0 do
        if m.(i) then model_members := i :: !model_members
      done;
      words_ok && !get_ok
      && Bitset.cardinal s = model_card
      && fold_card = model_card
      && List.rev !members = !model_members)

(* Raw-word helpers on adversarial patterns, the sign bit (index 62)
   included. *)
let test_bitset_raw_words () =
  Alcotest.(check int) "word_bits" 63 Bitset.word_bits;
  Alcotest.(check int) "popcount 0" 0 (Bitset.popcount_word 0);
  Alcotest.(check int) "popcount -1" 63 (Bitset.popcount_word (-1));
  Alcotest.(check int) "popcount sign bit" 1
    (Bitset.popcount_word (1 lsl 62));
  let bits w =
    let acc = ref [] in
    Bitset.iter_word (fun b -> acc := b :: !acc) w;
    List.rev !acc
  in
  Alcotest.(check (list int)) "iter_word mixed" [ 0; 5; 62 ]
    (bits (1 lor (1 lsl 5) lor (1 lsl 62)));
  Alcotest.(check (list int)) "iter_word empty" [] (bits 0)

let test_bitset_word_bounds () =
  let s = Bitset.create 10 and tiny = Bitset.create 9 in
  Alcotest.check_raises "get_word out of bounds"
    (Invalid_argument "Bitset.get_word: word index out of bounds") (fun () ->
      ignore (Bitset.get_word s 1));
  Alcotest.check_raises "union universe mismatch"
    (Invalid_argument "Bitset.union_into: universe sizes differ") (fun () ->
      Bitset.union_into ~into:s tiny);
  Alcotest.check_raises "diff universe mismatch"
    (Invalid_argument "Bitset.diff_into: universe sizes differ") (fun () ->
      Bitset.diff_into ~into:s tiny)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "median" 2.5
    (Stats.quantile [| 1.; 2.; 3.; 4. |] 0.5);
  Alcotest.(check (float 1e-9)) "q0" 1. (Stats.quantile [| 3.; 1.; 2. |] 0.);
  Alcotest.(check (float 1e-9)) "q1" 3. (Stats.quantile [| 3.; 1.; 2. |] 1.);
  Alcotest.(check (float 1e-9)) "fraction" 0.25 (Stats.fraction 1 4);
  Alcotest.(check (float 1e-9)) "fraction by zero" 0. (Stats.fraction 1 0);
  Alcotest.(check string) "percent" "12.5%" (Stats.percent 0.125);
  let h = Stats.histogram ~bins:4 ~lo:0. ~hi:4. [| 0.5; 1.5; 1.6; 3.9; 9. |] in
  Alcotest.(check (array int)) "histogram" [| 1; 2; 0; 2 |] h

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "stddev" 2.
    (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]);
  Alcotest.(check (float 1e-9)) "stddev single" 0. (Stats.stddev [| 5. |])

let test_table () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  Table.add_row t [ "longer" ];
  let rendered = Table.to_string t in
  Alcotest.(check bool) "contains header" true
    (String.length rendered > 0 && String.sub rendered 0 1 = "a");
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than header columns")
    (fun () -> Table.add_row t [ "1"; "2"; "3" ]);
  let csv = Table.csv t in
  Alcotest.(check string) "csv" "a,bb\nx,y\nlonger,\n" csv

let test_table_csv_quoting () =
  let t = Table.create ~header:[ "v" ] in
  Table.add_row t [ "a,b" ];
  Table.add_row t [ "q\"q" ];
  Alcotest.(check string) "quoted" "v\n\"a,b\"\n\"q\"\"q\"\n" (Table.csv t)

let () =
  Alcotest.run "prelude"
    [
      ( "bucket_queue",
        [
          Alcotest.test_case "pops in order" `Quick test_bucket_queue_order;
          Alcotest.test_case "monotone violation" `Quick
            test_bucket_queue_monotone;
          Alcotest.test_case "rank bounds" `Quick test_bucket_queue_bounds;
          Alcotest.test_case "clear resets" `Quick test_bucket_queue_clear;
          test_bucket_queue_vs_sort;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic ops" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "raw words" `Quick test_bitset_raw_words;
          Alcotest.test_case "word bounds" `Quick test_bitset_word_bounds;
          test_bitset_vs_reference;
          test_bitset_words_vs_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
        ] );
      ( "table",
        [
          Alcotest.test_case "render and csv" `Quick test_table;
          Alcotest.test_case "csv quoting" `Quick test_table_csv_quoting;
        ] );
    ]
