(* The Section-8 extensions: attack activation, hysteresis, islands. *)

open Core
open Test_helpers

let sec2 = Policy.make Policy.Security_second
let sec3 = Policy.make Policy.Security_third

(* Figure 2 graph (see test_routing.ml). *)
let fig2 () =
  ( graph 6 [ c2p 1 0; p2p 1 2; p2p 2 0; c2p 3 2; c2p 4 3; c2p 5 0 ],
    Deployment.make ~n:6 ~full:[| 0; 1; 5 |] () )

let test_set_attack () =
  let g, dep = fig2 () in
  let sim = Bgpsim.create g sec2 dep ~dst:0 ~attacker:4 () in
  Bgpsim.set_attack sim ~active:false;
  let (_ : int) = Bgpsim.run sim in
  (* With the attack silenced, nobody routes to the attacker and the
     webhost keeps its secure route. *)
  Alcotest.(check bool) "webhost secure pre-attack" true (Bgpsim.route_secure sim 1);
  Alcotest.(check bool) "3491 has no route pre-attack" true
    (Bgpsim.chosen_path sim 3 <> None);
  Bgpsim.set_attack sim ~active:true;
  let (_ : int) = Bgpsim.run sim in
  Alcotest.(check bool) "webhost downgraded once attack starts" false
    (Bgpsim.route_secure sim 1);
  Alcotest.(check bool) "webhost routes through the attacker" true
    (Bgpsim.uses_attacker sim 1);
  (* Silencing the attack restores the original state. *)
  Bgpsim.set_attack sim ~active:false;
  let (_ : int) = Bgpsim.run sim in
  Alcotest.(check bool) "recovery after withdrawal" true
    (Bgpsim.route_secure sim 1)

let test_set_attack_requires_attacker () =
  let g, dep = fig2 () in
  let sim = Bgpsim.create g sec2 dep ~dst:0 () in
  Alcotest.check_raises "no attacker"
    (Invalid_argument "Bgpsim.set_attack: no attacker configured") (fun () ->
      Bgpsim.set_attack sim ~active:false)

let test_hysteresis_blocks_downgrade () =
  let g, dep = fig2 () in
  let sim = Bgpsim.create ~hysteresis:true g sec2 dep ~dst:0 ~attacker:4 () in
  Bgpsim.set_attack sim ~active:false;
  let (_ : int) = Bgpsim.run sim in
  Alcotest.(check bool) "secure route established" true (Bgpsim.route_secure sim 1);
  Bgpsim.set_attack sim ~active:true;
  let (_ : int) = Bgpsim.run sim in
  (* The webhost's decision process prefers the bogus peer route, but
     hysteresis holds the valid secure route. *)
  Alcotest.(check bool) "hysteresis keeps the secure route" true
    (Bgpsim.route_secure sim 1);
  Alcotest.(check bool) "webhost stays happy" false (Bgpsim.uses_attacker sim 1);
  (* Insecure ASes are not protected: Cogent still falls. *)
  Alcotest.(check bool) "Cogent still doomed" true (Bgpsim.uses_attacker sim 2)

let test_hysteresis_releases_withdrawn_route () =
  (* d=0 <- a=1 (chain), plus a's peer m side... if the secure route is
     withdrawn (link down), hysteresis must not pin a ghost route. *)
  let g = graph 4 [ c2p 0 1; c2p 1 2; c2p 3 2 ] in
  (* 0 <- 1 <- 2, and 3 is a customer of 2. *)
  let dep = Deployment.make ~n:4 ~full:[| 0; 1; 2 |] () in
  let sim = Bgpsim.create ~hysteresis:true g sec3 dep ~dst:0 () in
  let (_ : int) = Bgpsim.run sim in
  Alcotest.(check bool) "2 secure via 1" true (Bgpsim.route_secure sim 2);
  Bgpsim.set_link sim 0 1 ~up:false;
  let (_ : int) = Bgpsim.run sim in
  Alcotest.(check (option (list int))) "route gone after withdrawal" None
    (Bgpsim.chosen_path sim 2)

(* Hysteresis can only help: against an established state, every AS that
   kept a secure route without hysteresis also keeps one with it. *)
let test_hysteresis_monotone =
  qtest "hysteresis never loses secure routes" ~count:100 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:20 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if dst = m then true
      else begin
        let run hysteresis =
          let sim = Bgpsim.create ~hysteresis g sec3 dep ~dst ~attacker:m () in
          Bgpsim.set_attack sim ~active:false;
          ignore (Bgpsim.run sim);
          Bgpsim.set_attack sim ~active:true;
          ignore (Bgpsim.run sim);
          Array.init n (fun v -> Bgpsim.route_secure sim v)
        in
        let plain = run false and hyst = run true in
        let ok = ref true in
        for v = 0 to n - 1 do
          if plain.(v) && not hyst.(v) then ok := false
        done;
        !ok
      end)

let () =
  Alcotest.run "extensions"
    [
      ( "attack activation",
        [
          Alcotest.test_case "set_attack lifecycle" `Quick test_set_attack;
          Alcotest.test_case "requires attacker" `Quick
            test_set_attack_requires_attacker;
        ] );
      ( "hysteresis",
        [
          Alcotest.test_case "blocks the Figure-2 downgrade" `Quick
            test_hysteresis_blocks_downgrade;
          Alcotest.test_case "releases withdrawn routes" `Quick
            test_hysteresis_releases_withdrawn_route;
          test_hysteresis_monotone;
        ] );
    ]
