(* Experiment harness: every registry entry must run end to end on a
   small context and produce non-trivial output; context construction,
   sampling, and the registry itself are checked. *)

open Core

(* A small but structurally complete context, shared across cases. *)
let ctx =
  lazy (Experiments.Context.make ~n:1200 ~seed:3 ~scale:0.15 ())

let ixp_ctx =
  lazy (Experiments.Context.make ~n:1200 ~seed:3 ~ixp:true ~scale:0.1 ())

let test_context_basics () =
  let c = Lazy.force ctx in
  Alcotest.(check int) "all ASes listed" 1200
    (Array.length c.Experiments.Context.all);
  Alcotest.(check bool) "non-stub pool non-empty" true
    (Array.length c.Experiments.Context.non_stubs > 0);
  Alcotest.(check bool) "cps designated" true
    (Array.length c.Experiments.Context.cps > 0);
  Alcotest.(check string) "label" "base" c.Experiments.Context.label

let test_context_deterministic () =
  let a = Experiments.Context.make ~n:1200 ~seed:3 () in
  let b = Experiments.Context.make ~n:1200 ~seed:3 () in
  Alcotest.(check bool) "same graph" true
    (Graph.edges a.Experiments.Context.graph
    = Graph.edges b.Experiments.Context.graph);
  Alcotest.(check (array int)) "same samples"
    (Experiments.Context.sample a "x" a.Experiments.Context.all 10)
    (Experiments.Context.sample b "x" b.Experiments.Context.all 10)

let test_context_sampling () =
  let c = Lazy.force ctx in
  let s1 = Experiments.Context.sample c "p1" c.Experiments.Context.all 20 in
  let s2 = Experiments.Context.sample c "p2" c.Experiments.Context.all 20 in
  Alcotest.(check int) "size" 20 (Array.length s1);
  Alcotest.(check bool) "purposes draw differently" true (s1 <> s2);
  (* Oversampling clips to the pool. *)
  let s3 = Experiments.Context.sample c "p3" [| 1; 2; 3 |] 10 in
  Alcotest.(check int) "clipped" 3 (Array.length s3)

let test_sample_key_reuse () =
  let c = Lazy.force ctx in
  let pool1 = [| 2; 4; 6; 8; 10; 12 |] in
  let s1 = Experiments.Context.sample c "reuse" pool1 3 in
  (* Replaying the identical draw is legitimate... *)
  Alcotest.(check (array int)) "identical replay allowed" s1
    (Experiments.Context.sample c "reuse" pool1 3);
  (* ...but the same purpose against a different pool or size would
     silently replay one index stream over unrelated data — the Figure
     7(b) secure-destination bug — so it must raise. *)
  Alcotest.check_raises "different pool rejected"
    (Invalid_argument
       "Context.sample: purpose \"reuse\" reused with a different pool or size")
    (fun () -> ignore (Experiments.Context.sample c "reuse" [| 1; 3; 5 |] 3));
  Alcotest.check_raises "different size rejected"
    (Invalid_argument
       "Context.sample: purpose \"reuse\" reused with a different pool or size")
    (fun () -> ignore (Experiments.Context.sample c "reuse" pool1 4))

let test_priority_sample () =
  let c = Lazy.force ctx in
  let all = c.Experiments.Context.all in
  let small = Array.sub all 0 200 in
  let big = Array.sub all 0 400 in
  let s_small = Experiments.Context.priority_sample c "ps" small 50 in
  let s_big = Experiments.Context.priority_sample c "ps" big 50 in
  Alcotest.(check int) "k elements" 50 (Array.length s_small);
  Alcotest.(check (array int)) "deterministic" s_small
    (Experiments.Context.priority_sample c "ps" small 50);
  let mem pool v = Array.exists (( = ) v) pool in
  Alcotest.(check bool) "subset of pool" true
    (Array.for_all (mem small) s_small);
  (* Nested pools give nested-ish samples: every member of the bigger
     pool's sample that lies in the smaller pool must also be in the
     smaller pool's sample (the priority order is global). *)
  Alcotest.(check bool) "coupled across nested pools" true
    (Array.for_all
       (fun v -> (not (mem small v)) || mem s_small v)
       s_big);
  (* Clips like [sample]. *)
  Alcotest.(check int) "clipped" 3
    (Array.length (Experiments.Context.priority_sample c "ps" [| 7; 8; 9 |] 10));
  (* Unlike [sample], reuse across pools is the point — no exception. *)
  ignore (Experiments.Context.priority_sample c "ps" big 20)

let test_context_scaled () =
  let c = Experiments.Context.make ~n:1200 ~scale:2.5 () in
  Alcotest.(check int) "scaled up" 25 (Experiments.Context.scaled c 10);
  let c' = Experiments.Context.make ~n:1200 ~scale:0.01 () in
  Alcotest.(check int) "never below 1" 1 (Experiments.Context.scaled c' 10)

let test_ixp_context () =
  let base = Lazy.force ctx and ixp = Lazy.force ixp_ctx in
  Alcotest.(check string) "label" "ixp" ixp.Experiments.Context.label;
  Alcotest.(check bool) "more peer edges" true
    (Graph.num_peer_edges ixp.Experiments.Context.graph
    > Graph.num_peer_edges base.Experiments.Context.graph)

let test_registry () =
  let ids = Experiments.Registry.ids () in
  Alcotest.(check bool) "at least 12 experiments" true (List.length ids >= 12);
  Alcotest.(check bool) "ids unique" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  Alcotest.(check bool) "find works" true
    (Experiments.Registry.find "baseline" <> None);
  Alcotest.(check bool) "find rejects junk" true
    (Experiments.Registry.find "nope" = None)

let experiment_case entry =
  Alcotest.test_case entry.Experiments.Registry.id `Slow (fun () ->
      let out = entry.Experiments.Registry.run (Lazy.force ctx) in
      Alcotest.(check bool)
        (entry.Experiments.Registry.id ^ " produces output")
        true
        (String.length out > 100);
      (* Every experiment quotes its paper anchor in the header. *)
      Alcotest.(check bool)
        (entry.Experiments.Registry.id ^ " mentions the paper")
        true
        (String.length entry.Experiments.Registry.paper > 0))

(* The baseline experiment's headline number must be in the paper's
   ballpark on the synthetic graph. *)
let test_baseline_value () =
  let c = Lazy.force ctx in
  let attackers = Experiments.Context.sample c "bv-att" c.Experiments.Context.all 25 in
  let dsts = Experiments.Context.sample c "bv-dst" c.Experiments.Context.all 25 in
  let pairs = Metric.pairs ~attackers ~dsts () in
  let b =
    Metric.h_metric c.Experiments.Context.graph Experiments.Context.sec3
      (Deployment.empty 1200) pairs
  in
  Alcotest.(check bool)
    (Printf.sprintf "baseline lb %.2f in [0.45, 0.8]" b.Metric.lb)
    true
    (b.Metric.lb > 0.45 && b.Metric.lb < 0.8)

(* DESIGN.md promises that the aggregate trends are stable across seeds:
   the Figure-3 shape must not depend on which synthetic graph we drew. *)
let test_seed_stability () =
  let shape seed =
    let c = Experiments.Context.make ~n:1200 ~seed ~scale:0.2 () in
    let attackers = Experiments.Context.sample c "ss-att" c.Experiments.Context.all 20 in
    let dsts = Experiments.Context.sample c "ss-dst" c.Experiments.Context.all 20 in
    let pairs = Metric.pairs ~attackers ~dsts () in
    let doomed, _, immune =
      Experiments.Util.partition_fractions c.Experiments.Context.graph
        Experiments.Context.sec3 pairs
    in
    (doomed, immune)
  in
  let d1, i1 = shape 11 and d2, i2 = shape 222 in
  Alcotest.(check bool)
    (Printf.sprintf "doomed stable (%.2f vs %.2f)" d1 d2)
    true
    (abs_float (d1 -. d2) < 0.12);
  Alcotest.(check bool)
    (Printf.sprintf "immune stable (%.2f vs %.2f)" i1 i2)
    true
    (abs_float (i1 -. i2) < 0.12)

let () =
  Alcotest.run "experiments"
    [
      ( "context",
        [
          Alcotest.test_case "basics" `Quick test_context_basics;
          Alcotest.test_case "deterministic" `Quick test_context_deterministic;
          Alcotest.test_case "sampling" `Quick test_context_sampling;
          Alcotest.test_case "sample-key reuse guard" `Quick
            test_sample_key_reuse;
          Alcotest.test_case "priority sampling" `Quick test_priority_sample;
          Alcotest.test_case "scaled" `Quick test_context_scaled;
          Alcotest.test_case "ixp variant" `Quick test_ixp_context;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "baseline ballpark" `Slow test_baseline_value;
          Alcotest.test_case "stable across seeds" `Slow test_seed_stability;
        ] );
      ( "runs end to end",
        List.map experiment_case Experiments.Registry.all );
    ]
