(* Attack strategy space (Section 3). *)

open Core
open Test_helpers

let sec3 = Policy.make Policy.Security_third

(* Small fixed scenario: d=0 with provider 1 and its chain; attacker 3. *)
let g = lazy (graph 5 [ c2p 0 1; c2p 1 2; c2p 3 2; c2p 4 3 ])
let empty = Deployment.empty 5

let simulate ?origin_auth strategy =
  Attacks.simulate ?origin_auth (Lazy.force g) sec3 empty ~attacker:3 ~dst:0
    strategy

let test_origin_validation_gate () =
  Alcotest.(check bool) "prefix hijack fails OV" false
    (Attacks.passes_origin_validation Attacks.Prefix_hijack);
  Alcotest.(check bool) "subprefix hijack fails OV" false
    (Attacks.passes_origin_validation Attacks.Subprefix_hijack);
  Alcotest.(check bool) "fabricated path passes OV" true
    (Attacks.passes_origin_validation (Attacks.Fabricated_path 1));
  Alcotest.(check bool) "longer fabricated path passes OV" true
    (Attacks.passes_origin_validation (Attacks.Fabricated_path 4))

let test_filtered_hijack_is_noop () =
  let r = simulate ~origin_auth:true Attacks.Prefix_hijack in
  Alcotest.(check bool) "filtered" true r.Attacks.filtered;
  (* All three sources (1, 2, 4) reach the destination normally. *)
  Alcotest.(check int) "all happy" r.Attacks.sources r.Attacks.happy_lb

let test_unfiltered_subprefix_is_devastating () =
  let r = simulate ~origin_auth:false Attacks.Subprefix_hijack in
  Alcotest.(check bool) "not filtered" false r.Attacks.filtered;
  (* Everyone with a perceivable route to the attacker loses; in this
     graph that is everyone. *)
  Alcotest.(check int) "nobody happy" 0 r.Attacks.happy_lb

let test_fabricated_path_ignores_origin_auth () =
  let with_oa = simulate ~origin_auth:true (Attacks.Fabricated_path 1) in
  let without = simulate ~origin_auth:false (Attacks.Fabricated_path 1) in
  Alcotest.(check bool) "not filtered" false with_oa.Attacks.filtered;
  Alcotest.(check int) "same happy count" with_oa.Attacks.happy_lb
    without.Attacks.happy_lb

let test_fabricated_path_requires_positive_length () =
  Alcotest.check_raises "length 0 rejected"
    (Invalid_argument "Attacks.simulate: Fabricated_path requires length >= 1")
    (fun () -> ignore (simulate (Attacks.Fabricated_path 0)))

(* Shorter claims are (weakly) stronger attacks — the justification for
   the paper's choice of the "m d" announcement.  This holds for the
   standard Gao-Rexford LP model (verified over hundreds of thousands of
   random instances); under the LPk variants it can fail in rare corner
   cases, because a longer claim can flip an intermediate AS's
   length-interleaved class and thereby change what it exports. *)
let test_shorter_claims_stronger =
  qtest "attack strength is monotone in claimed length (standard LP)"
    ~count:150
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let policy =
        Policy.make
          (match Rng.int rng 3 with
          | 0 -> Policy.Security_first
          | 1 -> Policy.Security_second
          | _ -> Policy.Security_third)
      in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if dst = m then true
      else begin
        let happy k =
          (Attacks.simulate g policy dep ~attacker:m ~dst
             (Attacks.Fabricated_path k))
            .Attacks.happy_lb
        in
        let h1 = happy 1 and h2 = happy 2 and h4 = happy 4 in
        h1 <= h2 && h2 <= h4
      end)

(* An unfiltered prefix hijack (claim 0) is at least as strong as the
   "m d" attack. *)
let test_hijack_at_least_as_strong =
  qtest "prefix hijack >= fabricated path when unfiltered" ~count:150
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dst = Rng.int rng n and m = Rng.int rng n in
      if dst = m then true
      else begin
        let happy s =
          (Attacks.simulate ~origin_auth:false g sec3 (Deployment.empty n)
             ~attacker:m ~dst s)
            .Attacks.happy_lb
        in
        happy Attacks.Prefix_hijack <= happy (Attacks.Fabricated_path 1)
      end)

let test_strategy_names () =
  Alcotest.(check string) "md name" "fabricated path \"m d\""
    (Attacks.strategy_name (Attacks.Fabricated_path 1));
  Alcotest.(check string) "hijack name" "prefix hijack"
    (Attacks.strategy_name Attacks.Prefix_hijack)

let () =
  Alcotest.run "attacks"
    [
      ( "origin validation",
        [
          Alcotest.test_case "validation gate" `Quick
            test_origin_validation_gate;
          Alcotest.test_case "filtered hijack is a no-op" `Quick
            test_filtered_hijack_is_noop;
          Alcotest.test_case "unfiltered subprefix hijack" `Quick
            test_unfiltered_subprefix_is_devastating;
          Alcotest.test_case "fabricated path ignores OA" `Quick
            test_fabricated_path_ignores_origin_auth;
          Alcotest.test_case "bad length" `Quick
            test_fabricated_path_requires_positive_length;
          Alcotest.test_case "names" `Quick test_strategy_names;
        ] );
      ( "properties",
        [ test_shorter_claims_stronger; test_hijack_at_least_as_strong ] );
    ]
