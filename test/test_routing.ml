(* Routing engine: hand-computed scenarios (including the paper's
   Figure 2 protocol-downgrade example) and cross-validation of the
   generalized label-setting engine against the literal Appendix-B staged
   algorithm. *)

open Core
open Test_helpers

let sec1 = Policy.make Policy.Security_first
let sec2 = Policy.make Policy.Security_second
let sec3 = Policy.make Policy.Security_third

let deployment_of_list n full =
  Deployment.make ~n ~full:(Array.of_list full) ()

(* A 4-node chain: d <- a <- b, and peer b--c, c customer of a.
   Checks classes, lengths and Ex. *)
let test_chain_basics () =
  (* ids: d=0, a=1, b=2, c=3.  a customer of... make a provider of d:
     d customer of a?  We want: a has customer route to d. *)
  let g = graph 4 [ c2p 0 1; c2p 1 2; p2p 2 3; c2p 3 1 ] in
  (* d=0 is customer of a=1; a is customer of b=2; b peers with c=3;
     c is customer of a. *)
  let dep = Deployment.empty 4 in
  let out = Engine.compute g sec3 dep ~dst:0 ~attacker:None in
  Alcotest.(check int) "a's length" 1 (Outcome.length out 1);
  Alcotest.(check string) "a's class" "customer"
    (Policy.class_name (Outcome.route_class out 1));
  Alcotest.(check int) "b's length" 2 (Outcome.length out 2);
  Alcotest.(check string) "b's class" "customer"
    (Policy.class_name (Outcome.route_class out 2));
  (* c hears from its provider a (provider route, length 2).  b's customer
     route is announced to peers too, but c's provider route via a is...
     LP prefers provider < peer: so c should take the PEER route via b of
     length 3?  No: LP prefers peer over provider, so c takes the peer
     route via b (length 3) over the provider route via a (length 2). *)
  Alcotest.(check string) "c's class" "peer"
    (Policy.class_name (Outcome.route_class out 3));
  Alcotest.(check int) "c's length" 3 (Outcome.length out 3);
  Alcotest.(check bool) "everyone happy" true
    (Outcome.happy_lb out 1 && Outcome.happy_lb out 2 && Outcome.happy_lb out 3)

(* Ex: a peer route must not propagate to peers or providers. *)
let test_export_policy () =
  (* d=0 peers with a=1; b=2 is a's peer; p=3 is a's provider; c=4 is a's
     customer.  a hears d's origination (peer route).  Ex forbids a from
     announcing it to b (peer) and p (provider); only the customer c
     hears it. *)
  let g = graph 5 [ p2p 0 1; p2p 1 2; c2p 1 3; c2p 4 1 ] in
  let out = Engine.compute g sec3 (Deployment.empty 5) ~dst:0 ~attacker:None in
  Alcotest.(check bool) "a reached" true (Outcome.reached out 1);
  Alcotest.(check string) "a's class" "peer"
    (Policy.class_name (Outcome.route_class out 1));
  Alcotest.(check bool) "peer b not reached" false (Outcome.reached out 2);
  Alcotest.(check bool) "provider p not reached" false (Outcome.reached out 3);
  Alcotest.(check bool) "customer c reached" true (Outcome.reached out 4);
  Alcotest.(check string) "c's class" "provider"
    (Policy.class_name (Outcome.route_class out 4))

(* Paper Figure 2: the protocol downgrade attack on a Tier 1 destination.
   ids: dst 3356 = 0, webhost 21740 = 1, Cogent 174 = 2, 3491 = 3,
   attacker m = 4, stub 3536 = 5. *)
let figure2_graph () =
  graph 6
    [
      c2p 1 0 (* 21740 customer of Level3 *);
      p2p 1 2 (* 21740 peers with Cogent *);
      p2p 2 0 (* Cogent peers with Level3 *);
      c2p 3 2 (* 3491 customer of Cogent *);
      c2p 4 3 (* m customer of 3491 *);
      c2p 5 0 (* stub 3536 customer of Level3 *);
    ]

let test_figure2_normal () =
  let g = figure2_graph () in
  let dep = deployment_of_list 6 [ 0; 1; 5 ] in
  List.iter
    (fun policy ->
      let out = Engine.compute g policy dep ~dst:0 ~attacker:None in
      (* 21740 uses its secure provider route to Level3 directly; no peer
         route via Cogent exists thanks to Ex. *)
      Alcotest.(check string) "21740 class" "provider"
        (Policy.class_name (Outcome.route_class out 1));
      Alcotest.(check int) "21740 length" 1 (Outcome.length out 1);
      Alcotest.(check bool) "21740 secure" true (Outcome.secure out 1))
    [ sec1; sec2; sec3 ]

let test_figure2_attack_downgrade () =
  let g = figure2_graph () in
  let dep = deployment_of_list 6 [ 0; 1; 5 ] in
  let check_model policy ~happy_21740 ~secure_21740 =
    let out = Engine.compute g policy dep ~dst:0 ~attacker:(Some 4) in
    (* 3491 takes the bogus customer route (m, d), exports it to its
       provider Cogent, which prefers the 3-hop customer route over its
       1-hop peer route to Level3; Cogent is doomed. *)
    Alcotest.(check bool) "174 unhappy" false (Outcome.happy_ub out 2);
    Alcotest.(check string) "174 class" "customer"
      (Policy.class_name (Outcome.route_class out 2));
    (* The webhost sees a 4-hop bogus peer route via Cogent vs its 1-hop
       secure provider route. *)
    Alcotest.(check bool)
      (Policy.name policy ^ ": 21740 happy")
      happy_21740 (Outcome.happy_lb out 1);
    Alcotest.(check bool)
      (Policy.name policy ^ ": 21740 secure")
      secure_21740 (Outcome.secure out 1);
    (* The single-homed stub is immune. *)
    Alcotest.(check bool) "3536 happy" true (Outcome.happy_lb out 5)
  in
  (* Security 1st: the secure route is kept (Theorem 3.1). *)
  check_model sec1 ~happy_21740:true ~secure_21740:true;
  (* Security 2nd and 3rd: protocol downgrade — the insecure peer route
     wins on LP. *)
  check_model sec2 ~happy_21740:false ~secure_21740:false;
  check_model sec3 ~happy_21740:false ~secure_21740:false

(* The attacker's claimed path counts one extra hop. *)
let test_attacker_length () =
  let g = graph 3 [ c2p 1 0; c2p 2 1 ] in
  (* d=0 <- a=1 <- b=2 providers... a customer of d?  No: 1 is customer
     of 0, 2 customer of 1.  Attack from 2 against 0: 1 hears the bogus
     (2,0) from its customer 2 as a 2-hop customer route, vs its own
     1-hop customer... 0 is 1's provider.  1's legit route is a customer
     route?  1 is customer of 0, so 1's route via 0 is a provider route
     of length 1; the bogus route via 2 is a customer route of length 2.
     LP: customer wins — 1 is doomed. *)
  let out =
    Engine.compute g sec3 (Deployment.empty 3) ~dst:0 ~attacker:(Some 2)
  in
  Alcotest.(check int) "perceived length via attacker" 2 (Outcome.length out 1);
  Alcotest.(check string) "class via attacker" "customer"
    (Policy.class_name (Outcome.route_class out 1));
  Alcotest.(check bool) "doomed" false (Outcome.happy_ub out 1);
  Alcotest.(check (list int)) "claimed path" [ 1; 2; 0 ] (Outcome.path out 1)

(* Simplex stubs: secure as destinations, insecure as sources. *)
let test_simplex_semantics () =
  (* chain: d=0 <- a=1 <- b=2 (customer chains up). *)
  let g = graph 3 [ c2p 0 1; c2p 1 2 ] in
  (* d simplex, a full: a's route to d is secure. *)
  let dep =
    Deployment.make ~n:3 ~full:[| 1 |] ~simplex:[| 0 |] ()
  in
  let out = Engine.compute g sec1 dep ~dst:0 ~attacker:None in
  Alcotest.(check bool) "full AS validates simplex origin" true
    (Outcome.secure out 1);
  (* b insecure: route insecure. *)
  Alcotest.(check bool) "off AS has insecure route" false (Outcome.secure out 2);
  (* Now make b simplex: still insecure as a source. *)
  let dep2 = Deployment.make ~n:3 ~full:[| 1 |] ~simplex:[| 0; 2 |] () in
  let out2 = Engine.compute g sec1 dep2 ~dst:0 ~attacker:None in
  Alcotest.(check bool) "simplex AS does not validate" false
    (Outcome.secure out2 2)

(* A secure AS only treats a route as secure if the whole chain is
   secure. *)
let test_secure_chain_break () =
  let g = graph 4 [ c2p 0 1; c2p 1 2; c2p 2 3 ] in
  (* d=0 <- 1 <- 2 <- 3; secure: 0, 1, 3 (gap at 2). *)
  let dep = deployment_of_list 4 [ 0; 1; 3 ] in
  let out = Engine.compute g sec1 dep ~dst:0 ~attacker:None in
  Alcotest.(check bool) "1 secure" true (Outcome.secure out 1);
  Alcotest.(check bool) "2 insecure (not deployed)" false (Outcome.secure out 2);
  Alcotest.(check bool) "3 insecure (gap in chain)" false (Outcome.secure out 3)

(* Security 2nd: a secure AS prefers a longer secure customer route over a
   shorter insecure one — the root of collateral damage (Figure 14). *)
let test_sec2_prefers_secure_customer () =
  (* u=2 has two customer routes to d=0: a short one through the insecure
     x=1 (length 2), and a longer fully-secure one through c1=3, c2=4
     (length 3). *)
  let g = graph 5 [ c2p 0 1; c2p 1 2; c2p 0 3; c2p 3 4; c2p 4 2 ] in
  let dep = deployment_of_list 5 [ 0; 2; 3; 4 ] in
  let out = Engine.compute g sec2 dep ~dst:0 ~attacker:None in
  Alcotest.(check bool) "u takes the secure route" true (Outcome.secure out 2);
  Alcotest.(check int) "u's length is 3" 3 (Outcome.length out 2);
  let out3 = Engine.compute g sec3 dep ~dst:0 ~attacker:None in
  Alcotest.(check int) "sec3: u keeps the short route" 2 (Outcome.length out3 2);
  Alcotest.(check bool) "sec3: short route insecure" false (Outcome.secure out3 2)

(* Cross-validation: the generalized engine agrees with the literal
   Appendix-B staged algorithm on random instances, for all three models
   (standard LP). *)
let test_engine_vs_staged =
  qtest "engine = staged algorithm (random instances)" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:30 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let attacker =
        if Rng.bool rng then
          let m = Rng.int rng n in
          if m = dst then None else Some m
        else None
      in
      List.for_all
        (fun policy ->
          let a = Engine.compute g policy dep ~dst ~attacker in
          let b = Staged.compute g policy dep ~dst ~attacker in
          check_none (Policy.name policy) (outcome_mismatch a b))
        [ sec1; sec2; sec3 ])

(* The lower bound can never exceed the upper bound, and tiebreak
   resolution stays within the bounds. *)
let test_bounds_consistency =
  qtest "deterministic TB lies within the bounds" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let m = Rng.int rng n in
      let attacker = if m = dst then None else Some m in
      let policy = random_policy rng in
      let bounds = Engine.compute g policy dep ~dst ~attacker in
      let det =
        Engine.compute ~tiebreak:Engine.Lowest_next_hop g policy dep ~dst
          ~attacker
      in
      let ok = ref true in
      for v = 0 to n - 1 do
        if Some v <> attacker && v <> dst then begin
          if Outcome.happy_lb bounds v && not (Outcome.happy_lb det v) then
            ok := false;
          if Outcome.happy_lb det v && not (Outcome.happy_ub bounds v) then
            ok := false;
          (* Rank-visible fields must agree exactly. *)
          if Outcome.reached bounds v <> Outcome.reached det v then ok := false;
          if
            Outcome.reached bounds v
            && (Outcome.length bounds v <> Outcome.length det v
               || Outcome.secure bounds v <> Outcome.secure det v)
          then ok := false
        end
      done;
      !ok)

(* Theorem 3.1: security 1st admits no protocol downgrade — an AS with a
   secure route avoiding the attacker keeps a secure route under attack. *)
let test_no_downgrade_sec1 =
  qtest "Theorem 3.1: no downgrades when security is 1st" ~count:300
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let n = Graph.n g in
      let dep = random_deployment rng n in
      let dst = Rng.int rng n in
      let m = Rng.int rng n in
      if m = dst then true
      else begin
        let normal = Engine.compute g sec1 dep ~dst ~attacker:None in
        let attack = Engine.compute g sec1 dep ~dst ~attacker:(Some m) in
        let ok = ref true in
        for v = 0 to n - 1 do
          if
            v <> dst && v <> m
            && Outcome.secure normal v
            && not (List.mem m (Outcome.path normal v))
            && not (Outcome.secure attack v)
          then ok := false
        done;
        !ok
      end)

(* Theorem 6.1 (monotonicity of security 3rd): growing the secure set
   never makes a definitely-happy AS unhappy. *)
let test_monotonicity_sec3 =
  qtest "Theorem 6.1: security 3rd is monotone" ~count:300 (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng ~max_n:40 in
      let n = Graph.n g in
      let dst = Rng.int rng n in
      let m = Rng.int rng n in
      if m = dst then true
      else begin
        let small = random_deployment rng n in
        (* Grow: upgrade a random subset of ASes. *)
        let modes =
          Array.init n (fun v ->
              match Deployment.mode small v with
              | Deployment.Full -> Deployment.Full
              | (Deployment.Simplex | Deployment.Off) as mode ->
                  if Rng.int rng 3 = 0 then Deployment.Full else mode)
        in
        let large = Deployment.of_modes modes in
        let a = Engine.compute g sec3 small ~dst ~attacker:(Some m) in
        let b = Engine.compute g sec3 large ~dst ~attacker:(Some m) in
        let ok = ref true in
        for v = 0 to n - 1 do
          if
            v <> dst && v <> m
            && Outcome.happy_lb a v
            && not (Outcome.happy_lb b v)
          then ok := false
        done;
        !ok
      end)

let () =
  Alcotest.run "routing"
    [
      ( "hand examples",
        [
          Alcotest.test_case "chain basics" `Quick test_chain_basics;
          Alcotest.test_case "export policy Ex" `Quick test_export_policy;
          Alcotest.test_case "figure 2 normal conditions" `Quick
            test_figure2_normal;
          Alcotest.test_case "figure 2 downgrade attack" `Quick
            test_figure2_attack_downgrade;
          Alcotest.test_case "attacker path length" `Quick test_attacker_length;
          Alcotest.test_case "simplex semantics" `Quick test_simplex_semantics;
          Alcotest.test_case "secure chain break" `Quick
            test_secure_chain_break;
          Alcotest.test_case "sec2 prefers secure customer" `Quick
            test_sec2_prefers_secure_customer;
        ] );
      ( "properties",
        [
          test_engine_vs_staged;
          test_bounds_consistency;
          test_no_downgrade_sec1;
          test_monotonicity_sec3;
        ] );
    ]
